"""``repro bench-diff``: compare two benchmark artifacts for regressions.

Understands both artifact shapes the repo produces:

* **BENCH reports** (``BENCH_<name>.json`` from ``benchmarks/``):
  ``{"bench", "generated_at", "metrics": registry-snapshot}``.  Scalars
  (counters/gauges) compare by value; distributions (histograms/timers)
  compare by mean.
* **Scorecards** (``repro experiment --all -o``): claim rows compare by
  status — any ``pass`` → ``fail`` transition is a regression regardless
  of thresholds — and numeric ``measured`` values compare informationally.

Direction is inferred from the metric name: throughputs (``ops_per_sec``,
``_rate``) regress downward, durations (``seconds``, ``_time``) regress
upward, everything else is reported as changed but never flagged.  Timing
comparisons can be suppressed wholesale (``--ignore-timing``) for noisy
CI runners while still catching status flips and count changes.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import DiagnosticsError

__all__ = [
    "MetricDelta",
    "BenchDiff",
    "load_artifact",
    "diff_artifacts",
    "diff_files",
    "format_diff",
]

#: Substrings marking a metric where *larger* is better.
_HIGHER_BETTER = ("ops_per_sec", "_rate", "throughput", "passed")
#: Substrings marking a metric where *smaller* is better.
_LOWER_BETTER = ("seconds", "_time", "latency", "dropped", "failed")


def _direction(name: str) -> Optional[str]:
    """``"higher"`` / ``"lower"`` = which direction is *better*."""
    lowered = name.lower()
    for token in _HIGHER_BETTER:
        if token in lowered:
            return "higher"
    for token in _LOWER_BETTER:
        if token in lowered:
            return "lower"
    return None


def _is_timing(name: str) -> bool:
    lowered = name.lower()
    return "seconds" in lowered or "_time" in lowered


@dataclass(frozen=True)
class MetricDelta:
    """One compared value between baseline and current."""

    name: str
    baseline: Optional[float]
    current: Optional[float]
    direction: Optional[str]
    regression: bool
    note: str = ""

    @property
    def change(self) -> Optional[float]:
        """Relative change vs baseline (None when not computable)."""
        if self.baseline is None or self.current is None:
            return None
        if self.baseline == 0.0:
            return None if self.current == 0.0 else math.inf
        return (self.current - self.baseline) / abs(self.baseline)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "baseline": self.baseline,
            "current": self.current,
            "direction": self.direction,
            "regression": self.regression,
            "change": None if self.change is None or math.isinf(self.change)
            else self.change,
            "note": self.note,
        }


@dataclass
class BenchDiff:
    """The full comparison: every delta plus the regression verdict."""

    kind: str
    deltas: List[MetricDelta] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    added: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "ok": self.ok,
            "regressions": [d.to_dict() for d in self.regressions],
            "deltas": [d.to_dict() for d in self.deltas],
            "missing": list(self.missing),
            "added": list(self.added),
        }


def load_artifact(path: str) -> Dict[str, Any]:
    """Load and classify one artifact; adds an ``_artifact_kind`` key."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise DiagnosticsError(f"cannot read bench artifact {path!r}: {exc}")
    if not isinstance(data, dict):
        raise DiagnosticsError(
            f"bench artifact {path!r} is not a JSON object"
        )
    if "claims" in data and "counts" in data:
        data["_artifact_kind"] = "scorecard"
    elif "metrics" in data:
        data["_artifact_kind"] = "bench"
    else:
        raise DiagnosticsError(
            f"unrecognized bench artifact {path!r}: expected a BENCH "
            "metrics report or a harness scorecard"
        )
    return data


def _comparable(name: str, snap: Mapping[str, Any]) -> Optional[float]:
    """The scalar a metric snapshot compares by (mean for distributions)."""
    kind = snap.get("type")
    key = "mean" if kind in ("histogram", "timer") else "value"
    value = snap.get(key)
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def _diff_metric_maps(base: Mapping[str, Mapping[str, Any]],
                      cur: Mapping[str, Mapping[str, Any]],
                      threshold: float,
                      ignore_timing: bool) -> BenchDiff:
    diff = BenchDiff(kind="bench")
    for name in sorted(set(base) | set(cur)):
        if name not in cur:
            diff.missing.append(name)
            continue
        if name not in base:
            diff.added.append(name)
            continue
        baseline = _comparable(name, base[name])
        current = _comparable(name, cur[name])
        direction = _direction(name)
        regression = False
        note = ""
        if baseline is not None and current is not None and \
                direction is not None and \
                not (ignore_timing and _is_timing(name)):
            scale = abs(baseline) if baseline else 1.0
            delta = (current - baseline) / scale
            if direction == "higher" and delta < -threshold:
                regression = True
                note = f"dropped {-delta:.1%} (threshold {threshold:.0%})"
            elif direction == "lower" and delta > threshold:
                regression = True
                note = f"grew {delta:.1%} (threshold {threshold:.0%})"
        diff.deltas.append(MetricDelta(
            name=name, baseline=baseline, current=current,
            direction=direction, regression=regression, note=note,
        ))
    return diff


def _claim_rows(data: Mapping[str, Any]) -> Dict[Tuple[str, str], Dict[str, Any]]:
    rows: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for claim in data.get("claims", []):
        rows[(str(claim.get("experiment")), str(claim.get("check")))] = claim
    return rows


def _diff_scorecards(base: Mapping[str, Any], cur: Mapping[str, Any],
                     threshold: float, ignore_timing: bool) -> BenchDiff:
    diff = BenchDiff(kind="scorecard")
    base_rows = _claim_rows(base)
    cur_rows = _claim_rows(cur)
    for key in sorted(set(base_rows) | set(cur_rows)):
        label = f"{key[0]}/{key[1]}"
        if key not in cur_rows:
            diff.missing.append(label)
            continue
        if key not in base_rows:
            diff.added.append(label)
            continue
        base_status = str(base_rows[key].get("status"))
        cur_status = str(cur_rows[key].get("status"))
        if base_status != cur_status:
            regressed = base_status == "pass" and cur_status != "pass"
            diff.deltas.append(MetricDelta(
                name=f"{label}.status", baseline=None, current=None,
                direction=None, regression=regressed,
                note=f"{base_status} -> {cur_status}",
            ))
    # Wall time is the scorecard's only timing scalar worth flagging.
    if not ignore_timing:
        base_wall = base.get("wall_time_seconds")
        cur_wall = cur.get("wall_time_seconds")
        if isinstance(base_wall, (int, float)) and \
                isinstance(cur_wall, (int, float)) and base_wall > 0:
            delta = (float(cur_wall) - float(base_wall)) / float(base_wall)
            diff.deltas.append(MetricDelta(
                name="wall_time_seconds",
                baseline=float(base_wall), current=float(cur_wall),
                direction="lower", regression=delta > threshold,
                note=(f"grew {delta:.1%} (threshold {threshold:.0%})"
                      if delta > threshold else ""),
            ))
    return diff


def diff_artifacts(base: Dict[str, Any], cur: Dict[str, Any],
                   threshold: float = 0.25,
                   ignore_timing: bool = False) -> BenchDiff:
    """Compare two loaded artifacts of the same kind."""
    base_kind = base.get("_artifact_kind")
    cur_kind = cur.get("_artifact_kind")
    if base_kind != cur_kind:
        raise DiagnosticsError(
            f"artifact kinds differ: baseline is {base_kind!r}, "
            f"current is {cur_kind!r}"
        )
    if base_kind == "scorecard":
        return _diff_scorecards(base, cur, threshold, ignore_timing)
    return _diff_metric_maps(
        base.get("metrics", {}), cur.get("metrics", {}),
        threshold, ignore_timing,
    )


def diff_files(baseline_path: str, current_path: str,
               threshold: float = 0.25,
               ignore_timing: bool = False) -> BenchDiff:
    """Load two artifact files and compare them."""
    return diff_artifacts(
        load_artifact(baseline_path), load_artifact(current_path),
        threshold=threshold, ignore_timing=ignore_timing,
    )


def format_diff(diff: BenchDiff, verbose: bool = False) -> str:
    """Human-readable report: regressions first, then context."""
    lines: List[str] = []
    if diff.ok:
        lines.append(
            f"bench-diff: OK — no regressions across "
            f"{len(diff.deltas)} compared values"
        )
    else:
        lines.append(
            f"bench-diff: {len(diff.regressions)} REGRESSION(S) in "
            f"{len(diff.deltas)} compared values"
        )
        for delta in diff.regressions:
            base = "n/a" if delta.baseline is None else f"{delta.baseline:g}"
            cur = "n/a" if delta.current is None else f"{delta.current:g}"
            lines.append(
                f"  REGRESSED {delta.name}: {base} -> {cur}  {delta.note}"
            )
    if diff.missing:
        lines.append(f"  missing from current: {', '.join(diff.missing)}")
    if diff.added:
        lines.append(f"  new in current: {', '.join(diff.added)}")
    if verbose:
        for delta in diff.deltas:
            if delta.regression:
                continue
            change = delta.change
            rendered = "n/a" if change is None or math.isinf(change) \
                else f"{change:+.1%}"
            lines.append(f"  {delta.name}: {rendered} {delta.note}".rstrip())
    return "\n".join(lines)
