"""Operator console: the live ``repro top`` view and bench diffing.

Pure rendering (:func:`render_top`, :func:`format_diff`) is separated
from terminal driving (:func:`live_top`) so every frame and report is
unit-testable as a string.
"""

from repro.console.benchdiff import (
    BenchDiff,
    MetricDelta,
    diff_artifacts,
    diff_files,
    format_diff,
    load_artifact,
)
from repro.console.top import (
    TopState,
    collect_top_state,
    live_top,
    render_top,
)

__all__ = [
    "TopState",
    "collect_top_state",
    "render_top",
    "live_top",
    "BenchDiff",
    "MetricDelta",
    "load_artifact",
    "diff_artifacts",
    "diff_files",
    "format_diff",
]
