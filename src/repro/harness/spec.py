"""Experiment specifications: typed parameters, claim checks, registry.

An :class:`ExperimentSpec` turns an experiment driver into declarative
data: a name, a typed parameter schema with defaults, the runner
callable, and a list of first-class :class:`Check` objects — one per
paper claim the run must uphold.  Specs register themselves into a
process-wide registry at import time (each driver module under
:mod:`repro.experiments` calls :func:`register` at module level; the
``statan`` rule REP009 enforces that no driver ships without one), and
everything downstream — the ``repro experiment`` CLI, the benchmark
suite, the reproduction scorecard — dispatches through the registry
instead of hard-coding module names.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.errors import HarnessError

__all__ = [
    "Param",
    "Check",
    "CheckOutcome",
    "ExperimentSpec",
    "register",
    "unregister",
    "get_spec",
    "spec_names",
    "all_specs",
    "load_all",
]


def parse_bool(text: Union[str, bool]) -> bool:
    """``--set flag=true`` style coercion."""
    if isinstance(text, bool):
        return text
    lowered = text.strip().lower()
    if lowered in ("true", "yes", "1", "on"):
        return True
    if lowered in ("false", "no", "0", "off"):
        return False
    raise HarnessError(f"cannot parse boolean from {text!r}")


def parse_int_list(text: Union[str, Iterable[int]]) -> Tuple[int, ...]:
    """``--set copies=1,2,4`` style coercion."""
    if not isinstance(text, str):
        return tuple(int(v) for v in text)
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise HarnessError(
            f"cannot parse integer list from {text!r}"
        ) from exc


def parse_float_list(text: Union[str, Iterable[float]]) -> Tuple[float, ...]:
    """``--set targets=50,90,99`` style coercion."""
    if not isinstance(text, str):
        return tuple(float(v) for v in text)
    try:
        return tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise HarnessError(f"cannot parse float list from {text!r}") from exc


@dataclass(frozen=True)
class Param:
    """One typed experiment parameter.

    ``type`` is a callable coercing a ``--set key=value`` string to the
    runner's expected type (``int``, ``float``, ``str``,
    :func:`parse_bool`, :func:`parse_int_list`, …).  ``default`` may be
    ``None`` for optional parameters; the string ``"none"`` coerces back
    to ``None`` for those.
    """

    name: str
    type: Callable[[str], Any]
    default: Any
    help: str = ""

    def coerce(self, raw: Any) -> Any:
        if raw is None:
            return None
        if isinstance(raw, str) and raw.strip().lower() == "none":
            return None
        if not isinstance(raw, str):
            return raw
        try:
            return self.type(raw)
        except HarnessError:
            raise
        except (TypeError, ValueError) as exc:
            raise HarnessError(
                f"parameter {self.name!r}: cannot coerce {raw!r} "
                f"({exc})"
            ) from exc

    def describe(self) -> str:
        type_name = getattr(self.type, "__name__", str(self.type))
        return f"{self.name}={self.default!r} ({type_name})"


@dataclass(frozen=True)
class CheckOutcome:
    """What a check's function reports: the verdict plus the measured
    quantities that back it (these land in the artifact)."""

    passed: bool
    measured: Dict[str, float] = field(default_factory=dict)


#: What a check function may return: a bare verdict, a (verdict,
#: measurements) pair, or a full :class:`CheckOutcome`.
CheckReturn = Union[bool, Tuple[bool, Dict[str, float]], CheckOutcome]


@dataclass(frozen=True)
class Check:
    """One paper claim, as an executable predicate over the run result.

    ``fn`` receives the runner's return value and reports whether the
    claim holds, optionally with the measured values that decided it.
    ``quick=False`` marks claims that only hold at full iteration
    budgets; the scorecard's ``--quick`` profile records them as
    *skipped* rather than running them against an underpowered run.
    """

    name: str
    description: str
    fn: Callable[[Any], CheckReturn]
    quick: bool = True

    def evaluate(self, result: Any) -> CheckOutcome:
        outcome = self.fn(result)
        if isinstance(outcome, CheckOutcome):
            return outcome
        if isinstance(outcome, tuple):
            passed, measured = outcome
            return CheckOutcome(bool(passed), dict(measured))
        return CheckOutcome(bool(outcome))


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: metadata + parameters + runner + claims.

    ``runner`` is called with exactly the declared parameters (after
    defaulting, quick-profile substitution and ``--set`` overrides), so
    every :class:`Param` name must be a keyword the runner accepts.
    ``payload`` converts the runner's domain result into the
    JSON-serializable dictionary stored in the artifact; ``quick_params``
    are the reduced-budget overrides applied by the ``--quick`` profile.
    ``source`` names the paper section/figure the experiment reproduces.
    """

    name: str
    description: str
    runner: Callable[..., Any]
    params: Tuple[Param, ...] = ()
    checks: Tuple[Check, ...] = ()
    payload: Optional[Callable[[Any], Dict[str, Any]]] = None
    quick_params: Mapping[str, Any] = field(default_factory=dict)
    source: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise HarnessError("experiment spec needs a name")
        names = [p.name for p in self.params]
        if len(names) != len(set(names)):
            raise HarnessError(
                f"spec {self.name!r}: duplicate parameter names in {names}"
            )
        check_names = [c.name for c in self.checks]
        if len(check_names) != len(set(check_names)):
            raise HarnessError(
                f"spec {self.name!r}: duplicate check names in {check_names}"
            )
        unknown = set(self.quick_params) - set(names)
        if unknown:
            raise HarnessError(
                f"spec {self.name!r}: quick_params {sorted(unknown)} are "
                "not declared parameters"
            )
        try:
            signature = inspect.signature(self.runner)
        except (TypeError, ValueError):  # builtins without signatures
            signature = None
        if signature is not None:
            accepts_kwargs = any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in signature.parameters.values()
            )
            if not accepts_kwargs:
                missing = set(names) - set(signature.parameters)
                if missing:
                    raise HarnessError(
                        f"spec {self.name!r}: runner "
                        f"{self.runner.__name__} does not accept "
                        f"parameter(s) {sorted(missing)}"
                    )

    # -- parameter handling -------------------------------------------------------

    def param(self, name: str) -> Param:
        for param in self.params:
            if param.name == name:
                return param
        raise HarnessError(
            f"experiment {self.name!r} has no parameter {name!r}; "
            f"available: {sorted(p.name for p in self.params)}"
        )

    def has_param(self, name: str) -> bool:
        return any(p.name == name for p in self.params)

    def defaults(self) -> Dict[str, Any]:
        return {p.name: p.default for p in self.params}

    def resolve_params(
        self,
        overrides: Optional[Mapping[str, Any]] = None,
        quick: bool = False,
    ) -> Dict[str, Any]:
        """Defaults → quick profile → explicit overrides, coercing
        string values through each parameter's declared type."""
        resolved = self.defaults()
        if quick:
            resolved.update(self.quick_params)
        for key, raw in (overrides or {}).items():
            resolved[key] = self.param(key).coerce(raw)
        return resolved

    def check_names(self) -> List[str]:
        return [check.name for check in self.checks]


# -- registry ---------------------------------------------------------------------

_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry; returns it so modules can keep a
    ``SPEC = register(ExperimentSpec(...))`` handle."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        raise HarnessError(
            f"experiment {spec.name!r} is already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a spec (tests register throwaway specs)."""
    _REGISTRY.pop(name, None)


def get_spec(name: str) -> ExperimentSpec:
    load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise HarnessError(
            f"unknown experiment {name!r}; registered: {spec_names()}"
        ) from None


def spec_names() -> List[str]:
    load_all()
    return sorted(_REGISTRY)


def all_specs() -> List[ExperimentSpec]:
    load_all()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def load_all() -> None:
    """Import every experiment driver so its module-level ``register``
    call has run.  Idempotent; the import itself is the side effect."""
    import repro.experiments  # noqa: F401  (registration side effect)
