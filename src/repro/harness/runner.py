"""Executing registered experiments and assembling the scorecard.

:func:`execute` is the single code path every consumer shares — the
``repro experiment`` CLI, the benchmark suite, and the ``--all``
scorecard all funnel through it, so an experiment's runner and claim
checks cannot diverge between surfaces.  Runs are traced through the
:class:`~repro.telemetry.Telemetry` facade exactly like
``repro optimize --trace``: an ``experiment_started`` event with the
resolved parameters, one ``check_evaluated`` event per claim, and an
``experiment_finished`` event with the verdict; wall time and check
counters land in the telemetry metrics registry.
"""

from __future__ import annotations

import subprocess
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import HarnessError
from repro.harness.result import (
    RUN_RESULT_SCHEMA,
    SCORECARD_SCHEMA,
    CheckResult,
    RunResult,
)
from repro.harness.spec import ExperimentSpec, get_spec, spec_names
from repro.telemetry import Telemetry

__all__ = [
    "execute",
    "run_all",
    "scorecard_dict",
    "render_scorecard",
    "git_revision",
]


def git_revision() -> Optional[str]:
    """The repository's HEAD revision, or ``None`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5.0, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else None


def _apply_uniform_flags(
    spec: ExperimentSpec,
    params: Dict[str, Any],
    seed: Optional[int],
    backend: Optional[str],
    iterations: Optional[int],
) -> None:
    """Fold the uniform CLI flags into the resolved parameters.

    ``--seed`` is always accepted (it is recorded in the envelope even
    for deterministic experiments) and forwarded when the spec declares
    a ``seed`` parameter.  ``--backend`` and ``--iterations`` require a
    matching parameter — passing them to an experiment that has none is
    an error, not a silent no-op.
    """
    if seed is not None and spec.has_param("seed"):
        params["seed"] = seed
    if backend is not None:
        if not spec.has_param("backend"):
            raise HarnessError(
                f"experiment {spec.name!r} has no 'backend' parameter; "
                "it does not run on the LLA iteration kernels"
            )
        params["backend"] = backend
    if iterations is not None:
        for name in ("iterations", "max_iterations"):
            if spec.has_param(name):
                params[name] = iterations
                break
        else:
            raise HarnessError(
                f"experiment {spec.name!r} has no iteration-budget "
                "parameter"
            )


def execute(
    name: str,
    overrides: Optional[Mapping[str, Any]] = None,
    *,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    iterations: Optional[int] = None,
    quick: bool = False,
    telemetry: Optional[Telemetry] = None,
) -> RunResult:
    """Run one registered experiment and evaluate its claim checks.

    A check whose function raises does not abort the run: the exception
    is converted into a failed check carrying the error text, so one
    broken claim cannot hide the others' verdicts.
    """
    spec = get_spec(name)
    params = spec.resolve_params(overrides, quick=quick)
    _apply_uniform_flags(spec, params, seed, backend, iterations)
    profile = "quick" if quick else "default"
    telemetry = telemetry if telemetry is not None else Telemetry.disabled()

    telemetry.tracer.emit(
        "experiment_started",
        experiment=spec.name, params=dict(params), profile=profile,
    )
    started = time.perf_counter()
    domain_result = spec.runner(**params)
    wall_time = time.perf_counter() - started

    checks: List[CheckResult] = []
    for check in spec.checks:
        if quick and not check.quick:
            checks.append(CheckResult(
                name=check.name, description=check.description,
                passed=None, skipped=True,
            ))
            telemetry.tracer.emit(
                "check_evaluated", experiment=spec.name,
                check=check.name, status="skipped",
            )
            continue
        try:
            outcome = check.evaluate(domain_result)
            result = CheckResult(
                name=check.name, description=check.description,
                passed=outcome.passed, measured=dict(outcome.measured),
            )
        except Exception as exc:  # noqa: BLE001  # statan: disable=REP003 -- a raising check becomes a failed claim carrying the error, never a crashed run
            result = CheckResult(
                name=check.name,
                description=f"{check.description} [check raised: {exc}]",
                passed=False,
            )
        checks.append(result)
        telemetry.tracer.emit(
            "check_evaluated", experiment=spec.name, check=result.name,
            status=result.status, measured=dict(result.measured),
        )

    payload: Dict[str, Any] = {}
    if spec.payload is not None:
        payload = dict(spec.payload(domain_result))

    run = RunResult(
        experiment=spec.name,
        description=spec.description,
        params=dict(params),
        seed=seed if seed is not None else params.get("seed"),
        backend=backend if backend is not None else params.get("backend"),
        profile=profile,
        git_sha=git_revision(),
        wall_time_seconds=wall_time,
        checks=checks,
        payload=payload,
        source=spec.source,
        schema=RUN_RESULT_SCHEMA,
    )

    registry = telemetry.registry
    registry.timer(
        "harness.run_seconds", "experiment wall time"
    ).observe(wall_time)
    counts = run.counts
    registry.counter(
        "harness.checks_passed", "claim checks passed"
    ).inc(counts["passed"])
    registry.counter(
        "harness.checks_failed", "claim checks failed"
    ).inc(counts["failed"])
    telemetry.tracer.emit(
        "experiment_finished",
        experiment=spec.name, passed=run.passed,
        wall_time_seconds=wall_time, counts=counts,
    )
    return run


def run_all(
    names: Optional[Sequence[str]] = None,
    *,
    quick: bool = False,
    seed: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    progress: Optional[Any] = None,
) -> List[RunResult]:
    """Run every registered experiment (or the given subset) in name
    order.  ``progress`` is an optional callable receiving each
    completed :class:`RunResult` (the CLI prints rows as they land)."""
    results = []
    for name in (names if names is not None else spec_names()):
        run = execute(name, quick=quick, seed=seed, telemetry=telemetry)
        if progress is not None:
            progress(run)
        results.append(run)
    return results


def scorecard_dict(results: Sequence[RunResult],
                   quick: bool = False) -> Dict[str, Any]:
    """The ``--all`` artifact: one claim row per check across the whole
    paper, plus the full per-run envelopes."""
    claims = []
    for run in results:
        for check in run.checks:
            claims.append({
                "experiment": run.experiment,
                "check": check.name,
                "description": check.description,
                "status": check.status,
                "measured": dict(check.measured),
            })
    evaluated = [c for c in claims if c["status"] != "skipped"]
    counts = {
        "experiments": len(results),
        "claims": len(claims),
        "passed": sum(1 for c in evaluated if c["status"] == "pass"),
        "failed": sum(1 for c in evaluated if c["status"] == "fail"),
        "skipped": sum(1 for c in claims if c["status"] == "skipped"),
    }
    return {
        "schema": SCORECARD_SCHEMA,
        "profile": "quick" if quick else "default",
        "git_sha": git_revision(),
        "wall_time_seconds": sum(r.wall_time_seconds for r in results),
        "passed": all(r.passed for r in results),
        "counts": counts,
        "claims": claims,
        "runs": [run.to_dict() for run in results],
    }


def render_scorecard(results: Sequence[RunResult]) -> str:
    """Human-readable reproduction scorecard: one row per paper claim."""
    rows = []
    for run in results:
        for check in run.checks:
            rows.append((run.experiment, check.name, check.status))
    if not rows:
        return "no experiments were run"
    exp_width = max(len(r[0]) for r in rows)
    check_width = max(len(r[1]) for r in rows)
    lines = [
        "REPRODUCTION SCORECARD",
        f"{'experiment':<{exp_width}}  {'claim':<{check_width}}  status",
        "-" * (exp_width + check_width + 10),
    ]
    for experiment, check, status in rows:
        marker = {"pass": "PASS", "fail": "FAIL",
                  "skipped": "skip"}[status]
        lines.append(f"{experiment:<{exp_width}}  {check:<{check_width}}  "
                     f"{marker}")
    lines.append("-" * (exp_width + check_width + 10))
    evaluated = [r for r in rows if r[2] != "skipped"]
    passed = sum(1 for r in evaluated if r[2] == "pass")
    skipped = len(rows) - len(evaluated)
    total_time = sum(r.wall_time_seconds for r in results)
    verdict = ("all claims hold" if passed == len(evaluated)
               else f"{len(evaluated) - passed} claim(s) FAILED")
    skip_note = f" ({skipped} skipped under --quick)" if skipped else ""
    lines.append(
        f"{passed}/{len(evaluated)} claims pass{skip_note} — {verdict} "
        f"[{total_time:.1f}s]"
    )
    return "\n".join(lines)
