"""Unified experiment harness: declarative registry + one artifact schema.

Three pieces (see ``EXPERIMENTS.md`` for the authoring guide):

* :mod:`repro.harness.spec` — :class:`ExperimentSpec` (name, typed
  parameter schema, runner callable, first-class :class:`Check` objects
  encoding each paper claim) and the process-wide registry the drivers
  under :mod:`repro.experiments` populate at import time;
* :mod:`repro.harness.result` — the :class:`RunResult` envelope (params,
  seed, backend, git SHA, wall time, per-check verdicts with measured
  values, domain payload) serialized to one JSON schema, plus the
  dependency-free validators;
* :mod:`repro.harness.runner` — :func:`execute`/:func:`run_all`, the
  single code path the CLI, the benchmark suite and the ``--all``
  reproduction scorecard all share.
"""

from repro.harness.result import (
    RUN_RESULT_SCHEMA,
    SCORECARD_SCHEMA,
    CheckResult,
    RunResult,
    json_default,
    validate_run_result,
    validate_scorecard,
)
from repro.harness.runner import (
    execute,
    git_revision,
    render_scorecard,
    run_all,
    scorecard_dict,
)
from repro.harness.spec import (
    Check,
    CheckOutcome,
    ExperimentSpec,
    Param,
    all_specs,
    get_spec,
    load_all,
    parse_bool,
    parse_float_list,
    parse_int_list,
    register,
    spec_names,
    unregister,
)

__all__ = [
    # spec + registry
    "ExperimentSpec",
    "Param",
    "Check",
    "CheckOutcome",
    "register",
    "unregister",
    "get_spec",
    "spec_names",
    "all_specs",
    "load_all",
    "parse_bool",
    "parse_int_list",
    "parse_float_list",
    # result envelope
    "RunResult",
    "CheckResult",
    "RUN_RESULT_SCHEMA",
    "SCORECARD_SCHEMA",
    "json_default",
    "validate_run_result",
    "validate_scorecard",
    # runner
    "execute",
    "run_all",
    "scorecard_dict",
    "render_scorecard",
    "git_revision",
]
