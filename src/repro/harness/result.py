"""The ``RunResult`` envelope: one JSON artifact schema for every run.

Every experiment — CLI single run, ``--all`` scorecard entry, benchmark
invocation — produces the same envelope: the resolved parameters, the
seed/backend/profile it ran under, the git revision and wall time, the
per-claim check verdicts with their measured values, and a
JSON-serializable domain payload.  :func:`validate_run_result` is the
dependency-free schema check both the tests and :func:`from_dict` use,
so an artifact written by one layer always loads in another.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import HarnessError

__all__ = [
    "RUN_RESULT_SCHEMA",
    "SCORECARD_SCHEMA",
    "CheckResult",
    "RunResult",
    "json_default",
    "validate_run_result",
    "validate_scorecard",
]

#: Schema identifier stamped into every single-run artifact.
RUN_RESULT_SCHEMA = "repro.harness.run-result/1"
#: Schema identifier stamped into the ``--all`` scorecard artifact.
SCORECARD_SCHEMA = "repro.harness.scorecard/1"


@dataclass
class CheckResult:
    """One claim's verdict in one run."""

    name: str
    description: str
    passed: Optional[bool]          # None when skipped
    measured: Dict[str, float] = field(default_factory=dict)
    skipped: bool = False

    @property
    def status(self) -> str:
        if self.skipped:
            return "skipped"
        return "pass" if self.passed else "fail"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "status": self.status,
            "passed": self.passed,
            "measured": dict(self.measured),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CheckResult":
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            passed=data.get("passed"),
            measured=dict(data.get("measured", {})),
            skipped=data.get("status") == "skipped",
        )


@dataclass
class RunResult:
    """The uniform envelope for one experiment run."""

    experiment: str
    description: str
    params: Dict[str, Any]
    seed: Optional[int]
    backend: Optional[str]
    profile: str                    # "default" or "quick"
    git_sha: Optional[str]
    wall_time_seconds: float
    checks: List[CheckResult]
    payload: Dict[str, Any] = field(default_factory=dict)
    source: str = ""
    schema: str = RUN_RESULT_SCHEMA

    @property
    def passed(self) -> bool:
        """True when no evaluated check failed (skipped checks do not
        count against the run)."""
        return all(c.passed for c in self.checks if not c.skipped)

    @property
    def counts(self) -> Dict[str, int]:
        evaluated = [c for c in self.checks if not c.skipped]
        return {
            "total": len(self.checks),
            "passed": sum(1 for c in evaluated if c.passed),
            "failed": sum(1 for c in evaluated if not c.passed),
            "skipped": sum(1 for c in self.checks if c.skipped),
        }

    def check(self, name: str) -> CheckResult:
        for check in self.checks:
            if check.name == name:
                return check
        raise HarnessError(
            f"run of {self.experiment!r} has no check {name!r}; "
            f"available: {[c.name for c in self.checks]}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "experiment": self.experiment,
            "description": self.description,
            "source": self.source,
            "params": dict(self.params),
            "seed": self.seed,
            "backend": self.backend,
            "profile": self.profile,
            "git_sha": self.git_sha,
            "wall_time_seconds": self.wall_time_seconds,
            "passed": self.passed,
            "counts": self.counts,
            "checks": [c.to_dict() for c in self.checks],
            "payload": dict(self.payload),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False,
                          default=json_default)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        problems = validate_run_result(data)
        if problems:
            raise HarnessError(
                "artifact does not validate against the RunResult "
                "schema: " + "; ".join(problems)
            )
        return cls(
            experiment=str(data["experiment"]),
            description=str(data.get("description", "")),
            params=dict(data["params"]),
            seed=data.get("seed"),
            backend=data.get("backend"),
            profile=str(data.get("profile", "default")),
            git_sha=data.get("git_sha"),
            wall_time_seconds=float(data["wall_time_seconds"]),
            checks=[CheckResult.from_dict(c) for c in data["checks"]],
            payload=dict(data.get("payload", {})),
            source=str(data.get("source", "")),
            schema=str(data["schema"]),
        )

    def summary(self) -> str:
        counts = self.counts
        verdict = "PASS" if self.passed else "FAIL"
        skipped = (f", {counts['skipped']} skipped"
                   if counts["skipped"] else "")
        return (
            f"{self.experiment}: {verdict} "
            f"({counts['passed']}/{counts['passed'] + counts['failed']} "
            f"checks{skipped}, {self.wall_time_seconds:.1f}s)"
        )


def json_default(value: Any) -> Any:
    """Fallback serializer: numpy scalars, tuples-as-keys, etc."""
    for attr in ("item",):          # numpy scalar -> python scalar
        method = getattr(value, attr, None)
        if callable(method):
            try:
                return method()
            except (TypeError, ValueError):
                pass
    return str(value)


# -- schema validation (dependency-free) -------------------------------------------

_CHECK_STATUSES = ("pass", "fail", "skipped")


def _type_name(value: Any) -> str:
    return type(value).__name__


def validate_run_result(data: Any) -> List[str]:
    """Validate one run artifact; returns a list of problems (empty when
    the artifact conforms to :data:`RUN_RESULT_SCHEMA`)."""
    problems: List[str] = []
    if not isinstance(data, Mapping):
        return [f"artifact must be an object, got {_type_name(data)}"]
    if data.get("schema") != RUN_RESULT_SCHEMA:
        problems.append(
            f"schema must be {RUN_RESULT_SCHEMA!r}, got "
            f"{data.get('schema')!r}"
        )
    for key, types in (
        ("experiment", str),
        ("params", Mapping),
        ("profile", str),
        ("wall_time_seconds", (int, float)),
        ("passed", bool),
        ("checks", list),
        ("payload", Mapping),
    ):
        if key not in data:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(data[key], types):
            problems.append(
                f"key {key!r} must be {types}, got {_type_name(data[key])}"
            )
    for key in ("seed", "backend", "git_sha"):
        value = data.get(key)
        if value is not None and not isinstance(value, (str, int)):
            problems.append(
                f"key {key!r} must be null, string or int, got "
                f"{_type_name(value)}"
            )
    for index, check in enumerate(data.get("checks") or []):
        where = f"checks[{index}]"
        if not isinstance(check, Mapping):
            problems.append(f"{where} must be an object")
            continue
        if not isinstance(check.get("name"), str) or not check.get("name"):
            problems.append(f"{where}: missing check name")
        if check.get("status") not in _CHECK_STATUSES:
            problems.append(
                f"{where}: status must be one of {_CHECK_STATUSES}, got "
                f"{check.get('status')!r}"
            )
        if check.get("status") != "skipped" and \
                not isinstance(check.get("passed"), bool):
            problems.append(f"{where}: evaluated check needs a boolean "
                            "'passed'")
        measured = check.get("measured", {})
        if not isinstance(measured, Mapping):
            problems.append(f"{where}: measured must be an object")
        else:
            for key, value in measured.items():
                if not isinstance(value, (int, float, bool)):
                    problems.append(
                        f"{where}: measured[{key!r}] must be numeric, "
                        f"got {_type_name(value)}"
                    )
    return problems


def validate_scorecard(data: Any) -> List[str]:
    """Validate a scorecard artifact: the envelope plus every embedded
    run against :func:`validate_run_result`."""
    problems: List[str] = []
    if not isinstance(data, Mapping):
        return [f"scorecard must be an object, got {_type_name(data)}"]
    if data.get("schema") != SCORECARD_SCHEMA:
        problems.append(
            f"schema must be {SCORECARD_SCHEMA!r}, got {data.get('schema')!r}"
        )
    for key, types in (
        ("profile", str),
        ("passed", bool),
        ("counts", Mapping),
        ("claims", list),
        ("runs", list),
    ):
        if key not in data:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(data[key], types):
            problems.append(
                f"key {key!r} must be {types}, got {_type_name(data[key])}"
            )
    for index, row in enumerate(data.get("claims") or []):
        if not isinstance(row, Mapping) or \
                not isinstance(row.get("experiment"), str) or \
                not isinstance(row.get("check"), str):
            problems.append(
                f"claims[{index}] must carry 'experiment' and 'check'"
            )
        elif row.get("status") not in _CHECK_STATUSES:
            problems.append(
                f"claims[{index}]: bad status {row.get('status')!r}"
            )
    for index, run in enumerate(data.get("runs") or []):
        for problem in validate_run_result(run):
            problems.append(f"runs[{index}]: {problem}")
    return problems
