"""Convergence detection for the LLA iteration.

The paper stops its prototype optimizer "until the utility improvement from
the previous iteration is below 1%" (Section 6.4) and, for batch use,
"stopping it after it converges" (Section 4.4).  Detecting convergence of a
dual-ascent method purely from the utility trace is fragile — Figure 7 shows
slowly-dampening oscillations that *look* convergent but correspond to an
infeasible workload — so the detector here combines:

* **utility stability**: relative utility change below ``utility_tol`` for
  ``window`` consecutive iterations; and
* **feasibility**: no resource or path constraint violated beyond
  ``feasibility_tol`` (the paper's own Section 5.4 argument for telling
  slow convergence apart from unschedulability).

Feasibility checking can be disabled to mimic a naive utility-only stop,
which the schedulability experiments use to demonstrate the failure mode.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Mapping, Optional

from repro.model.task import TaskSet

__all__ = ["ConvergenceDetector"]


class ConvergenceDetector:
    """Sliding-window convergence test over the LLA iteration."""

    def __init__(
        self,
        taskset: TaskSet,
        utility_tol: float = 1e-4,
        window: int = 10,
        feasibility_tol: float = 1e-3,
        require_feasible: bool = True,
        utility_floor: float = 1e-6,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        if utility_tol <= 0.0:
            raise ValueError(f"utility_tol must be positive, got {utility_tol!r}")
        if utility_floor <= 0.0:
            raise ValueError(
                f"utility_floor must be positive, got {utility_floor!r}"
            )
        self.taskset = taskset
        self.utility_tol = float(utility_tol)
        self.window = int(window)
        self.feasibility_tol = float(feasibility_tol)
        self.require_feasible = bool(require_feasible)
        self.utility_floor = float(utility_floor)
        self._recent: Deque[float] = deque(maxlen=window + 1)
        self._last_latencies: Optional[Mapping[str, float]] = None

    def reset(self) -> None:
        self._recent.clear()
        self._last_latencies = None

    def observe(self, utility: float, latencies: Mapping[str, float]) -> None:
        """Record one iteration's outcome."""
        self._recent.append(float(utility))
        self._last_latencies = dict(latencies)

    def utility_stable(self) -> bool:
        """Relative utility change below tolerance across the window.

        The spread is judged against the window's utility *magnitude*, with
        ``utility_floor`` as an absolute lower bound on the scale: a run
        whose utilities are legitimately tiny (|U| ≪ 1, e.g. heavily
        discounted linear utilities) must still settle relative to its own
        magnitude rather than to an absolute bar, while an identically-zero
        trace is still recognized as stable without dividing by zero.
        """
        if len(self._recent) <= self.window:
            return False
        values = list(self._recent)
        scale = max(self.utility_floor, max(abs(v) for v in values))
        spread = max(values) - min(values)
        return spread / scale <= self.utility_tol

    def feasible(self) -> bool:
        """Current iterate satisfies Eqs. 3–4 within tolerance."""
        if self._last_latencies is None:
            return False
        return self.taskset.is_feasible(  # statan: disable=REP016 -- scalar-backend feasibility fallback
            self._last_latencies, tol=self.feasibility_tol
        )

    def converged(self) -> bool:
        if not self.utility_stable():
            return False
        if self.require_feasible and not self.feasible():
            return False
        return True
