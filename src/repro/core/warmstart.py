"""Warm-start price initialization for LLA.

The paper leaves the dual-variable initialization unspecified (its Figure 5
runs evidently start cold — the long γ=1 climb).  A resource can however
estimate its own equilibrium price *locally*: at a saturated optimum with
inactive path constraints, every subtask on resource ``r`` satisfies the
stationarity condition

    μ_r · cost_s / lat_s² = w_s         ⇒   lat_s = sqrt(μ_r · cost_s / w_s)

and the capacity constraint binds:

    Σ_s cost_s / lat_s = B_r            ⇒   sqrt(μ_r) = Σ_s sqrt(cost_s · w_s) / B_r

The estimate needs only the hosted subtasks' costs and weights — data the
resource receives in the first protocol round anyway — so it is exact for
saturated resources with λ = 0 (e.g. the Figure 6 regime, where it makes
convergence instant) and a useful starting point otherwise.

Only defined for the hyperbolic share model with linear utilities; other
configurations fall back to the default initialization.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict

from repro.model.share import CorrectedShare, HyperbolicShare
from repro.model.task import TaskSet
from repro.model.utility import LinearUtility

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.optimizer import LLAOptimizer

__all__ = ["warm_start_resource_prices", "apply_warm_start"]


def warm_start_resource_prices(taskset: TaskSet,
                               default: float = 1.0) -> Dict[str, float]:
    """Per-resource equilibrium price estimates.

    Resources hosting any subtask whose share/utility model falls outside
    the closed form get the ``default`` price, as does any resource whose
    availability is zero or non-finite (a blacked-out resource has no
    equilibrium price — the estimate would divide by zero mid-recovery).
    """
    prices: Dict[str, float] = {}
    for rname, resource in taskset.resources.items():
        total = 0.0
        estimable = True
        for task, sub in taskset.subtasks_on(rname):  # statan: disable=REP016 -- one-time warm-start seeding, not per-iteration
            share_fn = taskset.share_function(sub.name)
            if isinstance(share_fn, CorrectedShare):
                share_fn = share_fn.base
            utility = task.utility
            if not isinstance(share_fn, HyperbolicShare) or \
                    not isinstance(utility, LinearUtility):
                estimable = False
                break
            weight = task.weight(sub.name) * utility.slope
            total += math.sqrt(share_fn.cost * weight)
        availability = resource.availability
        if estimable and total > 0.0 and availability > 0.0 \
                and math.isfinite(availability):
            prices[rname] = (total / availability) ** 2
        else:
            prices[rname] = float(default)
    return prices


def apply_warm_start(optimizer: "LLAOptimizer") -> Dict[str, float]:
    """Install warm-start prices into an :class:`LLAOptimizer` in place.

    Returns the applied price map.  Delegates to
    :meth:`~repro.core.optimizer.LLAOptimizer.adopt_prices`, which resets
    path prices to their initial value and refreshes the primal iterate —
    on an already-run optimizer (the service's churn path) the resulting
    state is identical to a fresh optimizer constructed at these prices,
    with no stale λ leaking into the next solve.
    """
    prices = warm_start_resource_prices(
        optimizer.taskset, default=optimizer.config.initial_resource_price
    )
    optimizer.adopt_prices(prices)
    return prices
