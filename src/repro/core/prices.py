"""Price computation: gradient projection updates (Section 4.3).

Prices measure congestion.  Each resource owns its price ``μ_r``; each task
controller owns the prices ``λ_p`` of its paths.  Both move opposite the
gradient of the dual objective (Low & Lapsley's method, which the paper
adopts):

    μ_r(t+1) = [ μ_r(t) − γ_r · (B_r − Σ_s share_r(s, lat_s)) ]⁺      (Eq. 8)
    λ_p(t+1) = [ λ_p(t) − γ_p · (1 − Σ_{s∈p} lat_s / C_i) ]⁺          (Eq. 9)

The ``[·]⁺`` projection onto the non-negative orthant is required by the
gradient projection method (dual variables of inequality constraints are
non-negative); the paper's formulas leave it implicit.

An overloaded resource (share sum above ``B_r``) has a negative gradient
component, so its price rises; a path with slack sees its price decay to
zero.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Tuple

from repro.errors import OptimizationError
from repro.core.state import PathKey
from repro.core.stepsize import StepSizePolicy
from repro.model.task import Task, TaskSet

__all__ = [
    "update_resource_price",
    "update_path_price",
    "ResourcePriceUpdater",
    "PathPriceUpdater",
]


def update_resource_price(price: float, gamma: float, availability: float,
                          load: float) -> float:
    """One projected gradient step of Eq. 8.

    ``load`` is the share sum ``Σ share_r(s, lat_s)`` currently requested
    on the resource.
    """
    return max(0.0, price - gamma * (availability - load))


def update_path_price(price: float, gamma: float, path_latency: float,
                      critical_time: float) -> float:
    """One projected gradient step of Eq. 9.

    The gradient component is the path's *relative slack*
    ``1 − Σ lat / C_i``: positive slack decays the price, a violated path
    (latency above the critical time) raises it.

    The critical time must be positive and finite: zero would divide the
    gradient away, ``inf``/``nan`` would silently freeze it at a constant
    1.0 and the price would decay to zero regardless of the latency.
    """
    if not (critical_time > 0.0 and math.isfinite(critical_time)):
        raise OptimizationError(
            "path price update needs a positive, finite critical time, "
            f"got {critical_time!r}"
        )
    return max(0.0, price - gamma * (1.0 - path_latency / critical_time))


class ResourcePriceUpdater:
    """Per-resource price state plus the update rule.

    Mirrors the paper's "Resource Price Computation" box: the resource
    receives the latencies of all subtasks running on it, recomputes its
    price, and (in the distributed runtime) sends it to the interested
    task controllers.
    """

    def __init__(self, taskset: TaskSet, initial_price: float = 1.0) -> None:
        if initial_price < 0.0:
            raise ValueError(
                f"initial resource price must be non-negative, got {initial_price!r}"
            )
        self.taskset = taskset
        self.initial_price = float(initial_price)
        self.prices: Dict[str, float] = {
            r: self.initial_price for r in taskset.resources
        }

    def reset(self) -> None:
        self.prices = {r: self.initial_price for r in self.taskset.resources}

    def congested(self, loads: Mapping[str, float],
                  tol: float = 1e-9) -> Tuple[str, ...]:
        """Resources whose share sum exceeds availability (Eq. 3 violated)."""
        return tuple(
            r for r, load in loads.items()
            if load > self.taskset.resources[r].availability + tol
        )

    def update(self, latencies: Mapping[str, float],
               policy: StepSizePolicy) -> Dict[str, float]:
        """Apply Eq. 8 to every resource; returns the new price map."""
        for rname, resource in self.taskset.resources.items():
            load = self.taskset.resource_load(rname, latencies)  # statan: disable=REP016 -- scalar reference updater (Eq. 8); vectorized engine owns the hot path
            self.prices[rname] = update_resource_price(
                self.prices[rname],
                policy.resource_gamma(rname),
                resource.availability,
                load,
            )
        return dict(self.prices)


class PathPriceUpdater:
    """Per-path price state for one task (held by its controller)."""

    def __init__(self, task: Task, initial_price: float = 0.0) -> None:
        if initial_price < 0.0:
            raise ValueError(
                f"initial path price must be non-negative, got {initial_price!r}"
            )
        if not (task.critical_time > 0.0 and math.isfinite(task.critical_time)):
            raise OptimizationError(
                f"task {task.name!r} has critical time "
                f"{task.critical_time!r}; the Eq. 9 gradient needs a "
                "positive, finite critical time"
            )
        self.task = task
        self.initial_price = float(initial_price)
        self.prices: Dict[PathKey, float] = {
            PathKey(task.name, i): self.initial_price
            for i in range(len(task.graph.paths))
        }

    def reset(self) -> None:
        self.prices = {k: self.initial_price for k in self.prices}

    def congested(self, latencies: Mapping[str, float],
                  tol: float = 1e-9) -> Tuple[PathKey, ...]:
        """Paths whose end-to-end latency exceeds the critical time."""
        congested = []
        for i, path in enumerate(self.task.graph.paths):
            lat = self.task.graph.path_latency(path, latencies)  # statan: disable=REP016 -- scalar reference updater (Eq. 9); vectorized engine owns the hot path
            if lat > self.task.critical_time + tol:
                congested.append(PathKey(self.task.name, i))
        return tuple(congested)

    def update(self, latencies: Mapping[str, float],
               policy: StepSizePolicy) -> Dict[PathKey, float]:
        """Apply Eq. 9 to every path of the task; returns new prices."""
        for i, path in enumerate(self.task.graph.paths):
            key = PathKey(self.task.name, i)
            lat = self.task.graph.path_latency(path, latencies)  # statan: disable=REP016 -- scalar reference updater (Eq. 9); vectorized engine owns the hot path
            self.prices[key] = update_path_price(
                self.prices[key],
                policy.path_gamma(key),
                lat,
                self.task.critical_time,
            )
        return dict(self.prices)
