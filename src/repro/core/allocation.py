"""Latency allocation: the per-task-controller step of LLA (Section 4.2).

Given resource prices ``μ_r`` and path prices ``λ_p``, each task controller
finds the subtask latencies maximizing the task-local Lagrangian

    L_i(lat) = U_i(lat) − Σ_s (Σ_{p ∋ s} λ_p) · lat_s − Σ_s μ_r(s) · share(s, lat_s)

over the box ``[lat_min_s, lat_max_s]``, where ``lat_min_s`` is the smallest
latency achievable with the full resource availability and ``lat_max_s``
defaults to the task's critical time (one subtask alone may not exceed any
path budget it sits on).

Two solve strategies:

* **Closed form** (the paper's experimental configuration): with a linear
  utility ``∂U_i/∂lat_s`` is the constant ``−w_s·slope``, so stationarity
  (Eq. 7) decouples per subtask into

      μ_r · (−dshare/dlat)(lat_s) = w_s·slope + Σ_{p ∋ s} λ_p

  which power-law share functions invert analytically.

* **Numeric**: for general concave utilities the task's subtask latencies
  couple through the aggregated latency, so the controller maximizes the
  task-local Lagrangian jointly with projected L-BFGS-B.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

import numpy as np
from scipy import optimize

from repro.errors import OptimizationError
from repro.core.state import PathKey
from repro.model.share import (
    CorrectedShare,
    HyperbolicShare,
    PowerLawShare,
    ShareFunction,
)
from repro.model.task import Task, TaskSet
from repro.model.utility import LinearUtility

__all__ = ["LatencyAllocator", "stationary_latency"]

#: Numerical floor for the "pull" (marginal latency cost); keeps the closed
#: form finite when a subtask experiences no utility pressure and no path
#: price (it then drifts to its maximum latency, as the clamp dictates).
_PULL_FLOOR = 1e-12


def stationary_latency(share_fn: ShareFunction, price: float,
                       pull: float) -> float:
    """Solve ``price · (−dshare/dlat)(lat) = pull`` for ``lat``.

    ``pull`` is the marginal cost of latency (utility slope plus path
    prices); ``price`` is the resource price ``μ_r``.  Supports the
    power-law family analytically and falls back to bracketed root finding
    for other strictly convex share functions.
    """
    if price <= 0.0:
        # Free resource: latency wants to shrink to its lower clamp.
        return 0.0
    if pull <= _PULL_FLOOR:
        # No pressure to be fast: latency wants to grow to its upper clamp.
        return math.inf

    if isinstance(share_fn, CorrectedShare):
        return share_fn.error + stationary_latency(share_fn.base, price, pull)
    if isinstance(share_fn, HyperbolicShare):
        return math.sqrt(price * share_fn.cost / pull)
    if isinstance(share_fn, PowerLawShare):
        alpha, cost = share_fn.alpha, share_fn.cost
        return (price * alpha * cost / pull) ** (1.0 / (alpha + 1.0))

    # Generic strictly convex share function: −dshare/dlat is positive and
    # strictly decreasing, so g(lat) = price·(−dshare/dlat)(lat) − pull is
    # strictly decreasing; bracket a sign change then bisect.
    def g(lat: float) -> float:
        return price * (-share_fn.dshare_dlat(lat)) - pull

    lo, hi = 1e-9, 1.0
    while g(hi) > 0.0 and hi < 1e12:
        hi *= 2.0
    if g(hi) > 0.0:
        return math.inf
    if g(lo) < 0.0:
        return lo
    return optimize.brentq(g, lo, hi, xtol=1e-12, rtol=1e-12)


class LatencyAllocator:
    """Computes new latencies for one task given current prices.

    Stateless apart from precomputed structure (bounds, weights, path
    memberships), so one instance per task can be reused every iteration —
    this mirrors the task controller's role in the distributed algorithm.
    """

    def __init__(self, taskset: TaskSet, task: Task,
                 max_latency_factor: float = 1.0) -> None:
        self.taskset = taskset
        self.task = task
        self._names = task.subtask_names
        self._paths_through: Dict[str, tuple] = {
            name: tuple(
                PathKey(task.name, i) for i in task.graph.paths_through(name)
            )
            for name in self._names
        }
        self._max_latency_factor = float(max_latency_factor)
        self._bounds: Dict[str, tuple] = {}
        self.refresh_bounds()

    def refresh_bounds(self) -> None:
        """(Re)compute per-subtask latency bounds from the current model.

        * lower bound: the latency achievable with the resource's full
          availability (share cannot exceed ``B_r``);
        * upper bound: the critical time (one subtask alone may not exceed
          any path budget), further capped by the *minimum rate share*
          ``rate × WCET`` of Section 6.2 — a subtask granted less than its
          rate share falls behind its arrivals and queues without bound, so
          its latency may not exceed ``latency_for_share(rate × WCET)``.

        Called again whenever error correction swaps a share function on
        the task set (Section 6.3), since both bounds shift with the model.
        """
        task = self.task
        for sub in task.subtasks:
            share_fn = self.taskset.share_function(sub.name)
            availability = self.taskset.resources[sub.resource].availability
            lo = share_fn.min_latency(availability)
            hi = task.critical_time * self._max_latency_factor
            if task.trigger is not None:
                min_share = task.trigger.mean_rate() * sub.exec_time
                if 0.0 < min_share < availability:
                    hi = min(hi, share_fn.latency_for_share(min_share))
            self._bounds[sub.name] = (lo, max(lo, hi))

    def path_price_sum(self, subtask: str,
                       path_prices: Mapping[PathKey, float]) -> float:
        """``Σ_{p ∋ s} λ_p`` for one subtask."""
        return sum(path_prices.get(k, 0.0) for k in self._paths_through[subtask])

    def allocate(
        self,
        resource_prices: Mapping[str, float],
        path_prices: Mapping[PathKey, float],
        current: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        """New latencies for all subtasks of this task (Eq. 7).

        ``current`` seeds the numeric solver for non-linear utilities; the
        closed form ignores it.
        """
        if isinstance(self.task.utility, LinearUtility) or \
                not self.task.utility.is_elastic():
            return self._allocate_closed_form(resource_prices, path_prices)
        return self._allocate_numeric(resource_prices, path_prices, current)

    # -- closed form -----------------------------------------------------------

    def _allocate_closed_form(
        self,
        resource_prices: Mapping[str, float],
        path_prices: Mapping[PathKey, float],
    ) -> Dict[str, float]:
        utility = self.task.utility
        slope = utility.slope if isinstance(utility, LinearUtility) else 0.0
        latencies: Dict[str, float] = {}
        for sub in self.task.subtasks:
            price = resource_prices.get(sub.resource, 0.0)
            pull = (
                self.task.weight(sub.name) * slope
                + self.path_price_sum(sub.name, path_prices)
            )
            lat = stationary_latency(
                self.taskset.share_function(sub.name), price, pull
            )
            lo, hi = self._bounds[sub.name]
            latencies[sub.name] = min(max(lat, lo), hi)
        return latencies

    # -- numeric (general concave utilities) -------------------------------------

    def _allocate_numeric(
        self,
        resource_prices: Mapping[str, float],
        path_prices: Mapping[PathKey, float],
        current: Optional[Mapping[str, float]],
    ) -> Dict[str, float]:
        names = list(self._names)
        share_fns = [self.taskset.share_function(n) for n in names]
        prices = np.array([
            resource_prices.get(self.task.subtask(n).resource, 0.0)
            for n in names
        ])
        lambdas = np.array([
            self.path_price_sum(n, path_prices) for n in names
        ])
        lo = np.array([self._bounds[n][0] for n in names])
        hi = np.array([self._bounds[n][1] for n in names])

        if current:
            x0 = np.array([current.get(n, (l + h) / 2.0)
                           for n, l, h in zip(names, lo, hi)])
            x0 = np.clip(x0, lo, hi)
        else:
            x0 = (lo + hi) / 2.0

        task = self.task

        def negative_lagrangian(x: np.ndarray) -> float:
            lat_map = dict(zip(names, x))
            value = task.utility_value(lat_map)  # statan: disable=REP016 -- task-local scalar probe in the latency-bound derivation
            value -= float(lambdas @ x)
            value -= sum(
                p * fn.share(xi) for p, fn, xi in zip(prices, share_fns, x)
            )
            return -value

        def negative_gradient(x: np.ndarray) -> np.ndarray:
            lat_map = dict(zip(names, x))
            grad_u = task.utility_gradient(lat_map)
            grad = np.array([grad_u[n] for n in names])
            grad -= lambdas
            grad -= np.array([
                p * fn.dshare_dlat(xi)
                for p, fn, xi in zip(prices, share_fns, x)
            ])
            return -grad

        result = optimize.minimize(
            negative_lagrangian,
            x0,
            jac=negative_gradient,
            bounds=list(zip(lo, hi)),
            method="L-BFGS-B",
        )
        if not result.success and not np.all(np.isfinite(result.x)):
            raise OptimizationError(
                f"latency allocation failed for task {task.name!r}: "
                f"{result.message}"
            )
        x = np.clip(result.x, lo, hi)
        return dict(zip(names, x.tolist()))
