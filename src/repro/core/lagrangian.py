"""Lagrangian evaluation and KKT diagnostics.

This module is the "math audit" of the reproduction: it evaluates the full
Lagrangian (Eq. 5), the dual objective, and the Karush–Kuhn–Tucker residuals
at a candidate solution.  The optimizer itself never needs these — the
iteration only uses per-subtask stationarity and per-constraint gradients —
but tests and experiment reports use them to certify that a converged LLA
point really is (near-)optimal:

* **stationarity**: ``∂L/∂lat_s ≈ 0`` for every interior subtask latency;
* **primal feasibility**: Eqs. 3–4 hold;
* **dual feasibility**: all prices non-negative (guaranteed by projection);
* **complementary slackness**: ``μ_r·(B_r − load_r) ≈ 0`` and
  ``λ_p·(C_i − lat_p) ≈ 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.core.state import PathKey
from repro.model.task import TaskSet

__all__ = ["lagrangian_value", "KKTReport", "kkt_report"]


def lagrangian_value(
    taskset: TaskSet,
    latencies: Mapping[str, float],
    resource_prices: Mapping[str, float],
    path_prices: Mapping[PathKey, float],
) -> float:
    """Evaluate Eq. 5 at the given primal/dual point."""
    value = taskset.total_utility(latencies)  # statan: disable=REP016 -- reference Lagrangian audits the vectorized engine
    for rname, resource in taskset.resources.items():
        load = taskset.resource_load(rname, latencies)  # statan: disable=REP016 -- reference Lagrangian audits the vectorized engine
        value -= resource_prices.get(rname, 0.0) * (load - resource.availability)
    for task in taskset.tasks:
        for i, path in enumerate(task.graph.paths):
            lat = task.graph.path_latency(path, latencies)  # statan: disable=REP016 -- reference Lagrangian audits the vectorized engine
            price = path_prices.get(PathKey(task.name, i), 0.0)
            value -= price * (lat - task.critical_time)
    return value


@dataclass
class KKTReport:
    """Residuals of the KKT conditions at a candidate optimum.

    All residuals are non-negative; zero means the condition holds exactly.
    ``stationarity`` omits subtasks clamped at a latency bound (there the
    box constraint's multiplier, which we do not track, absorbs the
    gradient).
    """

    stationarity: Dict[str, float]
    primal_resource: Dict[str, float]
    primal_path: Dict[PathKey, float]
    complementary_resource: Dict[str, float]
    complementary_path: Dict[PathKey, float]

    def max_stationarity(self) -> float:
        return max(self.stationarity.values()) if self.stationarity else 0.0

    def max_primal(self) -> float:
        values = list(self.primal_resource.values()) + list(
            self.primal_path.values()
        )
        return max(values) if values else 0.0

    def max_complementary(self) -> float:
        values = list(self.complementary_resource.values()) + list(
            self.complementary_path.values()
        )
        return max(values) if values else 0.0

    def is_approximately_optimal(self, stationarity_tol: float = 1e-3,
                                 primal_tol: float = 1e-3,
                                 complementary_tol: float = 1e-2) -> bool:
        return (
            self.max_stationarity() <= stationarity_tol
            and self.max_primal() <= primal_tol
            and self.max_complementary() <= complementary_tol
        )


def kkt_report(
    taskset: TaskSet,
    latencies: Mapping[str, float],
    resource_prices: Mapping[str, float],
    path_prices: Mapping[PathKey, float],
    bound_tol: float = 1e-6,
) -> KKTReport:
    """Compute KKT residuals at ``(latencies, prices)``.

    ``bound_tol`` controls which latencies count as clamped at a box bound
    and are therefore excluded from the stationarity check.
    """
    stationarity: Dict[str, float] = {}
    for task in taskset.tasks:
        grad_u = task.utility_gradient(latencies)
        for sub in task.subtasks:
            share_fn = taskset.share_function(sub.name)
            availability = taskset.resources[sub.resource].availability
            lat = latencies[sub.name]
            lo = share_fn.min_latency(availability)
            hi = task.critical_time
            if lat <= lo + bound_tol or lat >= hi - bound_tol:
                continue
            lam_sum = sum(
                path_prices.get(PathKey(task.name, i), 0.0)
                for i in task.graph.paths_through(sub.name)
            )
            grad = (
                grad_u[sub.name]
                - lam_sum
                - resource_prices.get(sub.resource, 0.0)
                * share_fn.dshare_dlat(lat)
            )
            stationarity[sub.name] = abs(grad)

    primal_resource: Dict[str, float] = {}
    complementary_resource: Dict[str, float] = {}
    for rname, resource in taskset.resources.items():
        load = taskset.resource_load(rname, latencies)  # statan: disable=REP016 -- reference Lagrangian audits the vectorized engine
        slack = resource.availability - load
        primal_resource[rname] = max(0.0, -slack)
        complementary_resource[rname] = abs(
            resource_prices.get(rname, 0.0) * slack
        )

    primal_path: Dict[PathKey, float] = {}
    complementary_path: Dict[PathKey, float] = {}
    for task in taskset.tasks:
        for i, path in enumerate(task.graph.paths):
            key = PathKey(task.name, i)
            lat = task.graph.path_latency(path, latencies)  # statan: disable=REP016 -- reference Lagrangian audits the vectorized engine
            slack = task.critical_time - lat
            primal_path[key] = max(0.0, -slack)
            # Normalize by the critical time so tasks with different
            # deadlines contribute comparable residuals.
            complementary_path[key] = abs(
                path_prices.get(key, 0.0) * slack / task.critical_time
            )

    return KKTReport(
        stationarity=stationarity,
        primal_resource=primal_resource,
        primal_path=primal_path,
        complementary_resource=complementary_resource,
        complementary_path=complementary_path,
    )
