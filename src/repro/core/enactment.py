"""Enactment policies: when to push new allocations into the system.

Section 4.4: "LLA runs continuously … however, new allocations are
computed and enacted only when significant changes occur", and the
prototype (§6.4) re-runs the optimizer once a minute after the utility
stabilizes, enacting when the improvement exceeds 1%.  Enactment is not
free in a real system (scheduler reconfiguration, churn), so the policy
deciding *when* the optimizer's current iterate becomes the system's
shares is a first-class knob.

Three policies:

* :class:`AlwaysEnact` — push every epoch (what a simulation study does);
* :class:`ThresholdEnactment` — push only when some share moved by more
  than a relative threshold since the last enactment (the paper's
  "significant changes" rule);
* :class:`PeriodicEnactment` — push every N epochs regardless (the
  prototype's once-a-minute steady-state mode), optionally combined with
  the threshold via ``ThresholdEnactment(…, max_interval=N)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional

from repro.errors import OptimizationError

__all__ = ["EnactmentPolicy", "AlwaysEnact", "ThresholdEnactment",
           "PeriodicEnactment"]


class EnactmentPolicy(ABC):
    """Decides whether a newly computed share map should be enacted."""

    @abstractmethod
    def should_enact(self, shares: Mapping[str, float]) -> bool:
        """Whether to push ``shares`` now.  Called once per epoch."""

    def notify_enacted(self, shares: Mapping[str, float]) -> None:
        """Called after the shares were actually pushed."""


class AlwaysEnact(EnactmentPolicy):
    """Enact every epoch."""

    def should_enact(self, shares: Mapping[str, float]) -> bool:
        return True


class ThresholdEnactment(EnactmentPolicy):
    """Enact when any share moved more than ``threshold`` (relative)
    since the last enactment — the §4.4 "significant changes" rule.

    ``max_interval`` bounds staleness: after that many consecutive
    skipped epochs the policy enacts regardless (0 disables the bound).
    """

    def __init__(self, threshold: float = 0.02, max_interval: int = 0) -> None:
        if threshold <= 0.0:
            raise OptimizationError(
                f"threshold must be positive, got {threshold!r}"
            )
        if max_interval < 0:
            raise OptimizationError(
                f"max_interval must be >= 0, got {max_interval!r}"
            )
        self.threshold = float(threshold)
        self.max_interval = int(max_interval)
        self._last_enacted: Optional[Dict[str, float]] = None
        self._skipped = 0
        self.enactments = 0
        self.skips = 0

    def should_enact(self, shares: Mapping[str, float]) -> bool:
        if self._last_enacted is None:
            return True
        if self.max_interval and self._skipped >= self.max_interval:
            return True
        for name, share in shares.items():
            previous = self._last_enacted.get(name)
            if previous is None:
                return True
            scale = max(abs(previous), 1e-9)
            if abs(share - previous) / scale > self.threshold:
                return True
        self._skipped += 1
        self.skips += 1
        return False

    def notify_enacted(self, shares: Mapping[str, float]) -> None:
        self._last_enacted = dict(shares)
        self._skipped = 0
        self.enactments += 1


class PeriodicEnactment(EnactmentPolicy):
    """Enact every ``interval`` epochs (the first epoch always enacts)."""

    def __init__(self, interval: int = 5) -> None:
        if interval < 1:
            raise OptimizationError(
                f"interval must be >= 1, got {interval!r}"
            )
        self.interval = int(interval)
        self._epoch = 0
        self.enactments = 0

    def should_enact(self, shares: Mapping[str, float]) -> bool:
        due = self._epoch % self.interval == 0
        self._epoch += 1
        return due

    def notify_enacted(self, shares: Mapping[str, float]) -> None:
        self.enactments += 1
