"""Optimizer state containers shared across LLA components.

The dual-decomposition state is deliberately plain data — dictionaries keyed
by subtask / resource / path identifiers — so the same structures serve the
in-process optimizer (:mod:`repro.core.optimizer`), the message-passing
distributed runtime (:mod:`repro.distributed`), and test assertions.

Paths are identified by :class:`PathKey` — the owning task name plus the
path's index into :attr:`SubtaskGraph.paths` — which is hashable, compact
and stable across iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Tuple

__all__ = ["PathKey", "IterationRecord", "OptimizationResult"]


class PathKey(NamedTuple):
    """Stable identifier of a root-to-leaf path: ``(task name, path index)``."""

    task: str
    index: int

    def __str__(self) -> str:
        return f"{self.task}#p{self.index}"


@dataclass
class IterationRecord:
    """Everything observable about one LLA iteration.

    Captured by the optimizer after each latency-allocation + price-update
    round; the experiment drivers build the paper's figures directly from a
    list of these.
    """

    iteration: int
    utility: float
    latencies: Dict[str, float]
    resource_prices: Dict[str, float]
    path_prices: Dict[PathKey, float]
    resource_loads: Dict[str, float]
    congested_resources: Tuple[str, ...]
    congested_paths: Tuple[PathKey, ...]
    critical_paths: Dict[str, float]

    def max_load(self) -> float:
        """Largest per-resource share sum this iteration."""
        return max(self.resource_loads.values()) if self.resource_loads else 0.0


@dataclass
class OptimizationResult:
    """Outcome of an LLA run.

    Attributes
    ----------
    converged:
        Whether the convergence criterion fired before the iteration budget
        ran out.
    iterations:
        Number of iterations actually executed.
    latencies:
        Final per-subtask latency assignment.
    utility:
        Final total utility ``Σ U_i``.
    history:
        Per-iteration records (empty if recording was disabled).
    """

    converged: bool
    iterations: int
    latencies: Dict[str, float]
    utility: float
    resource_prices: Dict[str, float] = field(default_factory=dict)
    path_prices: Dict[PathKey, float] = field(default_factory=dict)
    history: List[IterationRecord] = field(default_factory=list)

    def utility_trace(self) -> List[float]:
        """Utility value per iteration (the y-axis of Figures 5–7)."""
        return [rec.utility for rec in self.history]

    def load_trace(self, resource: str) -> List[float]:
        """Share-sum trajectory of one resource (Figure 7's dashed lines)."""
        return [rec.resource_loads[resource] for rec in self.history]
