"""LLA — Lagrangian Latency Assignment (the paper's core contribution).

Components:

* :class:`~repro.core.optimizer.LLAOptimizer` /
  :class:`~repro.core.optimizer.LLAConfig` — the iterative algorithm;
* :class:`~repro.core.allocation.LatencyAllocator` — the per-task-controller
  latency step (Eq. 7);
* :mod:`repro.core.prices` — gradient-projection price updates (Eqs. 8–9);
* :mod:`repro.core.stepsize` — fixed and adaptive step-size policies;
* :mod:`repro.core.convergence` — utility-and-feasibility convergence test;
* :mod:`repro.core.lagrangian` — Lagrangian evaluation and KKT audit;
* :class:`~repro.core.error_correction.ErrorCorrector` — Section 6.3's
  online additive model-error correction.
"""

from repro.core.allocation import LatencyAllocator, stationary_latency
from repro.core.convergence import ConvergenceDetector
from repro.core.enactment import (
    AlwaysEnact,
    EnactmentPolicy,
    PeriodicEnactment,
    ThresholdEnactment,
)
from repro.core.error_correction import ErrorCorrector, ErrorSample
from repro.core.lagrangian import KKTReport, kkt_report, lagrangian_value
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.prices import (
    PathPriceUpdater,
    ResourcePriceUpdater,
    update_path_price,
    update_resource_price,
)
from repro.core.sharding import ShardedEngine, ShardPlan, plan_shards
from repro.core.state import IterationRecord, OptimizationResult, PathKey
from repro.core.stepsize import AdaptiveStepSize, FixedStepSize, StepSizePolicy
from repro.core.structure import (
    TaskSetStructure,
    compile_structure,
    structure_from_dict,
    structure_to_dict,
)
from repro.core.warmstart import apply_warm_start, warm_start_resource_prices

__all__ = [
    "LLAOptimizer",
    "LLAConfig",
    "LatencyAllocator",
    "stationary_latency",
    "ConvergenceDetector",
    "ErrorCorrector",
    "ErrorSample",
    "KKTReport",
    "kkt_report",
    "lagrangian_value",
    "PathPriceUpdater",
    "ResourcePriceUpdater",
    "update_path_price",
    "update_resource_price",
    "IterationRecord",
    "OptimizationResult",
    "PathKey",
    "StepSizePolicy",
    "FixedStepSize",
    "AdaptiveStepSize",
    "EnactmentPolicy",
    "AlwaysEnact",
    "ThresholdEnactment",
    "PeriodicEnactment",
    "warm_start_resource_prices",
    "apply_warm_start",
    "TaskSetStructure",
    "compile_structure",
    "structure_to_dict",
    "structure_from_dict",
    "ShardedEngine",
    "ShardPlan",
    "plan_shards",
]
