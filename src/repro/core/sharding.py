"""Sharded execution of the vectorized LLA kernel.

The dual decomposition couples subtasks only through per-resource prices
(Eq. 8) and per-path prices (Eq. 9), and a path never leaves its task — so
the task↔resource incidence graph's **connected components** are fully
independent subproblems.  :func:`plan_shards` finds the components with a
union-find over the subtask→resource incidence and packs them into at most
``shards`` balanced groups; :class:`ShardedEngine` runs one
:class:`~repro.core.vectorized.VectorizedEngine` per group.

Components are never split across shards.  Splitting one would make its
resources *boundary* resources whose price vectors must be exchanged every
round — and, worse, would split the per-resource ``bincount`` reductions
into differently-ordered partial sums, breaking the bitwise scalar parity
the backends guarantee.  Keeping components whole makes the boundary
price-exchange set **empty**: each shard's round is exactly the global
round restricted to its rows, every partial sum sees the same addends in
the same order, and a sharded trajectory is bitwise-identical to the
unsharded one.  The cost is that the effective shard count is capped by
the number of components (a fully-connected workload runs as one shard).

Two execution modes:

* ``serial`` (default) — all shard engines run in-process.  No parallelism,
  but the per-iteration cost of the adaptive step-size coverage test drops
  from O(P·R) on the global path×resource incidence to Σ O(P_k·R_k) on the
  block-diagonal pieces — already a large win on separable workloads.
* ``processes`` — one daemon worker process per shard, receiving its
  sub-structure as a serialized payload (:func:`structure_to_dict`) and
  publishing its per-round arrays through ``multiprocessing.shared_memory``
  blocks; the parent exchanges only commands and acks per round.  Batched
  :meth:`ShardedEngine.iterate` amortizes the synchronization over many
  iterations, which is where the multi-core speedup lives.

When the plan degenerates to a single shard (``shards=1`` or one
component), the engine delegates to a single unsharded
:class:`VectorizedEngine` — identity by construction, not merely parity.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import Connection
from multiprocessing.shared_memory import SharedMemory
from typing import (
    TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Tuple,
)

import numpy as np

from repro.errors import OptimizationError
from repro.core.state import PathKey
from repro.core.stepsize import StepSizePolicy
from repro.core.structure import (
    TaskSetStructure,
    compile_structure,
    structure_from_dict,
    structure_to_dict,
)
from repro.core.vectorized import (
    EngineStep,
    GammaSpec,
    StepArrays,
    VectorizedEngine,
    gamma_spec,
    make_gamma_supplier,
)
from repro.model.task import TaskSet
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.optimizer import LLAConfig

__all__ = [
    "ShardSpec",
    "ShardPlan",
    "plan_shards",
    "extract_shard",
    "ShardedEngine",
]


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the global structure (all indices ascending,
    so per-shard reductions keep the global operand order)."""

    index: int
    task_ids: Tuple[int, ...]
    sub_ids: Tuple[int, ...]
    resource_ids: Tuple[int, ...]
    path_ids: Tuple[int, ...]


@dataclass(frozen=True)
class ShardPlan:
    """The component partition packed into shards."""

    n_components: int
    specs: Tuple[ShardSpec, ...]

    @property
    def n_shards(self) -> int:
        return len(self.specs)


class _UnionFind:
    """Path-halving union-find over ``n`` items."""

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic: the smaller root wins.
            if rb < ra:
                ra, rb = rb, ra
            self._parent[rb] = ra


def plan_shards(structure: TaskSetStructure, shards: int) -> ShardPlan:
    """Partition ``structure`` into at most ``shards`` component groups.

    Components (connected pieces of the task↔resource incidence graph,
    including task-less resources as singletons) are packed greedily onto
    the least-loaded shard, heaviest first, weighted by subtask count —
    deterministic ties go to the lowest component/shard index.
    """
    if shards < 1:
        raise OptimizationError(f"shards must be >= 1, got {shards!r}")
    n_res = structure.n_resources
    n_task = len(structure.task_names)
    uf = _UnionFind(n_res)
    starts = structure.task_sub_starts
    sub_res = structure.sub_resource
    for t in range(n_task):
        rs = sub_res[int(starts[t]):int(starts[t + 1])]
        first = int(rs[0])
        for r in rs[1:]:
            uf.union(first, int(r))

    # Component id := union-find root; order components by their smallest
    # resource index so the plan is reproducible.
    comp_resources: Dict[int, List[int]] = {}
    for r in range(n_res):
        comp_resources.setdefault(uf.find(r), []).append(r)
    comp_tasks: Dict[int, List[int]] = {root: [] for root in comp_resources}
    for t in range(n_task):
        root = uf.find(int(sub_res[int(starts[t])]))
        comp_tasks[root].append(t)

    components = sorted(comp_resources)
    n_components = len(components)
    effective = min(shards, n_components)

    def weight(root: int) -> int:
        return sum(
            int(starts[t + 1]) - int(starts[t]) for t in comp_tasks[root]
        )

    # Greedy balanced packing, heaviest component first.
    order = sorted(components, key=lambda root: (-weight(root), root))
    shard_tasks: List[List[int]] = [[] for _ in range(effective)]
    shard_resources: List[List[int]] = [[] for _ in range(effective)]
    shard_weight = [0] * effective
    for root in order:
        k = min(range(effective), key=lambda i: (shard_weight[i], i))
        shard_tasks[k].extend(comp_tasks[root])
        shard_resources[k].extend(comp_resources[root])
        shard_weight[k] += weight(root)

    specs = []
    for k in range(effective):
        task_ids = tuple(sorted(shard_tasks[k]))
        sub_ids: Tuple[int, ...] = tuple(
            s for t in task_ids
            for s in range(int(starts[t]), int(starts[t + 1]))
        )
        path_ids: Tuple[int, ...] = tuple(
            p for t in task_ids
            for p in range(structure.task_path_slice(t).start,
                           structure.task_path_slice(t).stop)
        )
        specs.append(ShardSpec(
            index=k,
            task_ids=task_ids,
            sub_ids=sub_ids,
            resource_ids=tuple(sorted(shard_resources[k])),
            path_ids=path_ids,
        ))
    return ShardPlan(n_components=n_components, specs=tuple(specs))


#: Model arrays refreshed by :meth:`TaskSetStructure.refresh_model`, split
#: by the index space they are sliced over when pushed into shards.
_REFRESH_SUB_ARRAYS = (
    "alpha", "cost", "err", "hyper_mask", "inv_exp", "lo", "hi",
)
_REFRESH_RES_ARRAYS = ("availability",)


def extract_shard(structure: TaskSetStructure,
                  spec: ShardSpec) -> TaskSetStructure:
    """The sub-structure of ``structure`` covering ``spec``'s rows.

    Index arrays are remapped to the shard's local numbering; because a
    spec's indices are ascending, the relative operand order of every
    reduction — and therefore every partial float sum — is preserved.
    The result is unbound (``taskset is None``).
    """
    subs = np.asarray(spec.sub_ids, dtype=np.intp)
    ress = np.asarray(spec.resource_ids, dtype=np.intp)
    paths = np.asarray(spec.path_ids, dtype=np.intp)
    tasks = np.asarray(spec.task_ids, dtype=np.intp)

    sub = TaskSetStructure(
        taskset=None,
        max_latency_factor=structure.max_latency_factor,
        subtask_names=tuple(structure.subtask_names[i] for i in spec.sub_ids),
        resource_names=tuple(
            structure.resource_names[i] for i in spec.resource_ids
        ),
        task_names=tuple(structure.task_names[i] for i in spec.task_ids),
        path_keys=tuple(structure.path_keys[i] for i in spec.path_ids),
    )

    # Per-subtask incidence, remapped via searchsorted (ascending ids).
    sub.sub_resource = np.searchsorted(ress, structure.sub_resource[subs])
    sub.sub_task_ids = np.searchsorted(tasks, structure.sub_task_ids[subs])
    sub.sub_exec = structure.sub_exec[subs].copy()

    # Path flattenings: select the shard's rows, keep global order.
    path_mask = np.zeros(structure.n_paths, dtype=bool)
    path_mask[paths] = True
    keep = path_mask[structure.path_ids_flat]
    sub.path_sub_flat = np.searchsorted(subs, structure.path_sub_flat[keep])
    sub.path_ids_flat = np.searchsorted(paths, structure.path_ids_flat[keep])
    sub_mask = np.zeros(structure.n_subtasks, dtype=bool)
    sub_mask[subs] = True
    keep_s = sub_mask[structure.sub_ids_flat]
    sub.sub_path_flat = np.searchsorted(paths, structure.sub_path_flat[keep_s])
    sub.sub_ids_flat = np.searchsorted(subs, structure.sub_ids_flat[keep_s])

    # Segment starts from per-task counts.
    starts = structure.task_sub_starts
    sub_counts = [int(starts[t + 1]) - int(starts[t]) for t in spec.task_ids]
    sub.task_sub_starts = np.concatenate(
        ([0], np.cumsum(sub_counts))
    ).astype(np.intp)
    path_counts = [
        structure.task_path_slice(t).stop - structure.task_path_slice(t).start
        for t in spec.task_ids
    ]
    sub.task_path_starts = np.concatenate(
        ([0], np.cumsum(path_counts))
    ).astype(np.intp)[:-1]

    sub.path_res_inc = structure.path_res_inc[np.ix_(paths, ress)].copy()

    # Model arrays: plain row selections.
    for name in _REFRESH_SUB_ARRAYS + ("weights", "pull_base"):
        setattr(sub, name, getattr(structure, name)[subs].copy())
    for name in _REFRESH_RES_ARRAYS:
        setattr(sub, name, getattr(structure, name)[ress].copy())
    sub.path_crit = structure.path_crit[paths].copy()
    for name in ("ut_kind", "ut_kc", "ut_slope", "ut_umax", "ut_crit"):
        setattr(sub, name, getattr(structure, name)[tasks].copy())
    return sub


# -- shared-memory worker pool ------------------------------------------------

#: Per-shard output blocks published through shared memory, as
#: (field, per-what, dtype) — offsets are computed from the shard's sizes.
_SHM_FIELDS: Tuple[Tuple[str, str, str], ...] = (
    ("lat", "sub", "float64"),
    ("mu", "res", "float64"),
    ("lam", "path", "float64"),
    ("loads", "res", "float64"),
    ("per_task", "task", "float64"),
    ("crit", "task", "float64"),
    ("cong_r", "res", "uint8"),
    ("cong_p", "path", "uint8"),
)


def _shm_layout(n_sub: int, n_res: int, n_path: int,
                n_task: int) -> Tuple[Dict[str, Tuple[int, int, str]], int]:
    """(field → (offset, length, dtype), total bytes) for one shard."""
    sizes = {"sub": n_sub, "res": n_res, "path": n_path, "task": n_task}
    layout: Dict[str, Tuple[int, int, str]] = {}
    offset = 0
    for name, per, dtype in _SHM_FIELDS:
        length = sizes[per]
        layout[name] = (offset, length, dtype)
        offset += length * np.dtype(dtype).itemsize
    return layout, max(offset, 1)


def _shm_views(shm: SharedMemory,
               layout: Mapping[str, Tuple[int, int, str]],
               ) -> Dict[str, np.ndarray]:
    views: Dict[str, np.ndarray] = {}
    for name, (offset, length, dtype) in layout.items():
        views[name] = np.ndarray(
            (length,), dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
        )
    return views


def _publish(views: Mapping[str, np.ndarray], out: StepArrays) -> None:
    views["lat"][:] = out.lat
    views["mu"][:] = out.mu
    views["lam"][:] = out.lam
    views["loads"][:] = out.loads
    views["per_task"][:] = out.per_task
    views["crit"][:] = out.crit
    views["cong_r"][:] = out.cong_r
    views["cong_p"][:] = out.cong_p


def _publish_state(views: Mapping[str, np.ndarray],
                   engine: VectorizedEngine) -> None:
    lat, mu, lam = engine.state_arrays()
    views["lat"][:] = lat
    views["mu"][:] = mu
    views["lam"][:] = lam


def _shard_worker_main(conn: Connection, payload: Dict[str, Any],
                       config_kwargs: Dict[str, Any], spec: GammaSpec,
                       shm_name: str,
                       layout: Dict[str, Tuple[int, int, str]]) -> None:
    """Worker process: one shard engine driven by pipe commands."""
    # Imported lazily so the worker constructs its config without the
    # parent's (unpicklable) policy/telemetry objects.
    from repro.core.optimizer import LLAConfig

    structure = structure_from_dict(payload)
    config = LLAConfig(**config_kwargs)
    engine = VectorizedEngine.from_structure(
        structure, config, make_gamma_supplier(spec, structure)
    )
    shm = SharedMemory(name=shm_name)
    try:
        views = _shm_views(shm, layout)
        _publish_state(views, engine)
        conn.send(("ready",))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "stop":
                break
            elif cmd == "step":
                _publish(views, engine.step_arrays())
                conn.send(("ok",))
            elif cmd == "iterate":
                out = engine.iterate(int(msg[1]))
                if out is not None:
                    _publish(views, out)
                conn.send(("ok",))
            elif cmd == "reallocate":
                engine.reallocate(msg[1])
                _publish_state(views, engine)
                conn.send(("ok",))
            elif cmd == "reset":
                engine.reset()
                _publish_state(views, engine)
                conn.send(("ok",))
            elif cmd == "reset_path_prices":
                engine.reset_path_prices()
                _publish_state(views, engine)
                conn.send(("ok",))
            elif cmd == "reset_step_sizes":
                engine.reset_step_sizes()
                conn.send(("ok",))
            elif cmd == "set_model":
                for name, values in msg[1].items():
                    setattr(structure, name, np.asarray(values))
                structure.inv_exp = 1.0 / (structure.alpha + 1.0)
                conn.send(("ok",))
            else:  # pragma: no cover - defensive
                conn.send(("error", f"unknown command {cmd!r}"))
        # Views alias shm.buf; drop them before closing the mapping.
        del views
    finally:
        shm.close()
        conn.close()


class _ShardPool:
    """One daemon worker per shard, exchanging commands over pipes and
    per-round arrays over shared memory."""

    def __init__(self, plan: ShardPlan, structures: Sequence[TaskSetStructure],
                 config_kwargs: Dict[str, Any], spec: GammaSpec) -> None:
        ctx = get_context()
        self._shms: List[SharedMemory] = []
        self._views: List[Dict[str, np.ndarray]] = []
        self._conns: List[Connection] = []
        self._procs: List[Any] = []
        self._closed = False
        try:
            for shard, sub in zip(plan.specs, structures):
                layout, nbytes = _shm_layout(
                    sub.n_subtasks, sub.n_resources, sub.n_paths,
                    len(sub.task_names),
                )
                shm = SharedMemory(create=True, size=nbytes)
                self._shms.append(shm)
                self._views.append(_shm_views(shm, layout))
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(child_conn, structure_to_dict(sub), config_kwargs,
                          spec, shm.name, layout),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            for conn in self._conns:
                self._expect(conn, "ready")
        except BaseException:
            self.close()
            raise

    @staticmethod
    def _expect(conn: Connection, tag: str) -> Tuple[Any, ...]:
        reply = conn.recv()
        if reply[0] != tag:
            raise OptimizationError(
                f"shard worker protocol error: expected {tag!r}, "
                f"got {reply!r}"
            )
        return tuple(reply)

    def broadcast(self, *msg: Any) -> None:
        """Send ``msg`` to every worker and wait for all acks — the only
        per-round synchronization point (the boundary price exchange is
        empty by construction)."""
        for conn in self._conns:
            conn.send(msg)
        for conn in self._conns:
            self._expect(conn, "ok")

    def send_one(self, index: int, *msg: Any) -> None:
        self._conns[index].send(msg)
        self._expect(self._conns[index], "ok")

    def views(self, index: int) -> Dict[str, np.ndarray]:
        return self._views[index]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        # Views alias the mappings; release them before close/unlink.
        self._views = []
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
        self._shms = []

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:  # statan: disable=REP003 -- __del__ must not raise
            pass


#: LLAConfig fields a shard worker needs (everything else is facade-level).
_WORKER_CONFIG_FIELDS = (
    "initial_resource_price", "initial_path_price", "congestion_tol",
    "max_latency_factor",
)


class ShardedEngine:
    """The :class:`VectorizedEngine` facade over a sharded plan.

    Exposes the same surface the optimizer drives (``step``,
    ``reallocate``, ``path_prices_dict``, ``reset*``, ``refresh_model``)
    plus batched :meth:`iterate`; merged outputs are assembled in global
    canonical order, so on separable workloads every materialized value is
    bitwise-equal to the unsharded engine's.
    """

    def __init__(self, taskset: TaskSet, config: "LLAConfig",
                 policy: StepSizePolicy,
                 telemetry: Optional[Telemetry] = None,
                 structure: Optional[TaskSetStructure] = None) -> None:
        if structure is not None:
            if structure.taskset is not taskset:
                raise OptimizationError(
                    "precompiled structure is bound to a different task set"
                )
            if structure.max_latency_factor != float(config.max_latency_factor):
                raise OptimizationError(
                    "precompiled structure was built at "
                    f"max_latency_factor={structure.max_latency_factor!r}, "
                    f"config wants {config.max_latency_factor!r}"
                )
            self.structure = structure
        else:
            self.structure = compile_structure(
                taskset, max_latency_factor=config.max_latency_factor
            )
        self.config = config
        self.plan = plan_shards(self.structure, config.shards)
        self._inner: Optional[VectorizedEngine] = None
        self._engines: List[VectorizedEngine] = []
        self._pool: Optional[_ShardPool] = None
        if self.plan.n_shards == 1:
            # Single shard (requested or collapsed): the unsharded kernel
            # itself — identical by construction.
            self._inner = VectorizedEngine(
                taskset, config, policy, telemetry=telemetry,
                structure=self.structure,
            )
            return
        spec = gamma_spec(policy)
        self._structures = [
            extract_shard(self.structure, shard) for shard in self.plan.specs
        ]
        if config.shard_mode == "processes":
            config_kwargs = {
                name: getattr(config, name) for name in _WORKER_CONFIG_FIELDS
            }
            self._pool = _ShardPool(
                self.plan, self._structures, config_kwargs, spec
            )
        else:
            self._engines = [
                VectorizedEngine.from_structure(
                    sub, config, make_gamma_supplier(spec, sub),
                    telemetry=telemetry,
                )
                for sub in self._structures
            ]

    # -- merge helpers ---------------------------------------------------------

    def _merge(self, outs: Sequence[Mapping[str, np.ndarray]]) -> EngineStep:
        """Scatter per-shard arrays into global order and materialize."""
        s = self.structure
        n_task = len(s.task_names)
        lat = np.empty(s.n_subtasks)
        mu = np.empty(s.n_resources)
        lam = np.empty(s.n_paths)
        loads = np.empty(s.n_resources)
        per_task = np.empty(n_task)
        crit = np.empty(n_task)
        cong_r = np.zeros(s.n_resources, dtype=bool)
        cong_p = np.zeros(s.n_paths, dtype=bool)
        for shard, out in zip(self.plan.specs, outs):
            subs = np.asarray(shard.sub_ids, dtype=np.intp)
            ress = np.asarray(shard.resource_ids, dtype=np.intp)
            paths = np.asarray(shard.path_ids, dtype=np.intp)
            tasks = np.asarray(shard.task_ids, dtype=np.intp)
            lat[subs] = out["lat"]
            mu[ress] = out["mu"]
            lam[paths] = out["lam"]
            loads[ress] = out["loads"]
            per_task[tasks] = out["per_task"]
            crit[tasks] = out["crit"]
            cong_r[ress] = np.asarray(out["cong_r"], dtype=bool)
            cong_p[paths] = np.asarray(out["cong_p"], dtype=bool)
        # Same materialization as VectorizedEngine.step: utility summed
        # sequentially in global task order.
        utility = float(sum(per_task.tolist()))
        return EngineStep(
            utility=utility,
            latencies=dict(zip(s.subtask_names, lat.tolist())),
            resource_prices=dict(zip(s.resource_names, mu.tolist())),
            path_prices=dict(zip(s.path_keys, lam.tolist())),
            resource_loads=dict(zip(s.resource_names, loads.tolist())),
            congested_resources=tuple(
                s.resource_names[i] for i in np.flatnonzero(cong_r)
            ),
            congested_paths=tuple(
                s.path_keys[i] for i in np.flatnonzero(cong_p)
            ),
            critical_paths=dict(zip(s.task_names, crit.tolist())),
        )

    @staticmethod
    def _as_views(out: StepArrays) -> Dict[str, np.ndarray]:
        return {
            "lat": out.lat, "mu": out.mu, "lam": out.lam, "loads": out.loads,
            "per_task": out.per_task, "crit": out.crit,
            "cong_r": out.cong_r, "cong_p": out.cong_p,
        }

    # -- facade ----------------------------------------------------------------

    def step(self) -> EngineStep:
        if self._inner is not None:
            return self._inner.step()
        if self._pool is not None:
            self._pool.broadcast("step")
            return self._merge(
                [self._pool.views(i) for i in range(self.plan.n_shards)]
            )
        return self._merge(
            [self._as_views(e.step_arrays()) for e in self._engines]
        )

    def iterate(self, n: int) -> None:
        """Run ``n`` iterations on every shard with a single sync point.

        Shards are component-disjoint, so no state is exchanged between
        iterations — this is where process-mode parallelism pays."""
        if n <= 0:
            return
        if self._inner is not None:
            self._inner.iterate(n)
        elif self._pool is not None:
            self._pool.broadcast("iterate", int(n))
        else:
            for engine in self._engines:
                engine.iterate(n)

    def reallocate(self, resource_prices: Mapping[str, float]) -> Dict[str, float]:
        if self._inner is not None:
            return self._inner.reallocate(resource_prices)
        s = self.structure
        merged: Dict[str, float] = {}
        if self._pool is not None:
            for i, shard in enumerate(self.plan.specs):
                local = {
                    s.resource_names[r]: float(
                        resource_prices.get(s.resource_names[r], 0.0)
                    )
                    for r in shard.resource_ids
                }
                self._pool.send_one(i, "reallocate", local)
                views = self._pool.views(i)
                names = [s.subtask_names[j] for j in shard.sub_ids]
                merged.update(zip(names, views["lat"].tolist()))
        else:
            for shard, engine in zip(self.plan.specs, self._engines):
                merged.update(engine.reallocate(resource_prices))
        # Re-key into global subtask order for a deterministic facade dict.
        return {name: merged[name] for name in s.subtask_names}

    def path_prices_dict(self) -> Dict[PathKey, float]:
        if self._inner is not None:
            return self._inner.path_prices_dict()
        s = self.structure
        lam = np.empty(s.n_paths)
        if self._pool is not None:
            for i, shard in enumerate(self.plan.specs):
                lam[np.asarray(shard.path_ids, dtype=np.intp)] = \
                    self._pool.views(i)["lam"]
        else:
            for shard, engine in zip(self.plan.specs, self._engines):
                lam[np.asarray(shard.path_ids, dtype=np.intp)] = \
                    engine.state_arrays()[2]
        return dict(zip(s.path_keys, lam.tolist()))

    def reset_step_sizes(self) -> None:
        if self._inner is not None:
            self._inner.reset_step_sizes()
        elif self._pool is not None:
            self._pool.broadcast("reset_step_sizes")
        else:
            for engine in self._engines:
                engine.reset_step_sizes()

    def reset_path_prices(self) -> None:
        if self._inner is not None:
            self._inner.reset_path_prices()
        elif self._pool is not None:
            self._pool.broadcast("reset_path_prices")
        else:
            for engine in self._engines:
                engine.reset_path_prices()

    def reset(self) -> None:
        if self._inner is not None:
            self._inner.reset()
        elif self._pool is not None:
            self._pool.broadcast("reset")
        else:
            for engine in self._engines:
                engine.reset()

    def refresh_model(self) -> None:
        """Re-read mutable model state and push it into every shard."""
        if self._inner is not None:
            self._inner.refresh_model()
            return
        self.structure.refresh_model()
        for i, (shard, sub) in enumerate(
                zip(self.plan.specs, self._structures)):
            subs = np.asarray(shard.sub_ids, dtype=np.intp)
            ress = np.asarray(shard.resource_ids, dtype=np.intp)
            for name in _REFRESH_SUB_ARRAYS:
                setattr(sub, name, getattr(self.structure, name)[subs].copy())
            for name in _REFRESH_RES_ARRAYS:
                setattr(sub, name, getattr(self.structure, name)[ress].copy())
            if self._pool is not None:
                arrays = {
                    name: getattr(sub, name)
                    for name in _REFRESH_SUB_ARRAYS + _REFRESH_RES_ARRAYS
                }
                self._pool.send_one(i, "set_model", arrays)

    def close(self) -> None:
        """Shut down worker processes and release shared memory."""
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:  # statan: disable=REP003 -- __del__ must not raise
            pass
