"""Step-size policies for the price updates (Section 5.2).

The price adjustments (Eqs. 8–9) are gradient steps whose sizes ``γ_r``,
``γ_p`` trade convergence speed against oscillation.  The paper evaluates
fixed step sizes (Figure 5: γ = 0.1 converges in >1000 iterations, γ = 1 in
~500, γ = 10 oscillates) and proposes an adaptive heuristic:

1. start from a fixed γ;
2. at each iteration, while a resource is congested, double its step size
   and the step sizes of every path traversing it;
3. as soon as the resource becomes uncongested, revert to the initial value.

Both policies are implemented behind one small interface so the optimizer
and the distributed agents are policy-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Set, Tuple

from repro.errors import OptimizationError
from repro.core.state import PathKey
from repro.model.task import TaskSet

__all__ = ["StepSizePolicy", "FixedStepSize", "AdaptiveStepSize"]


class StepSizePolicy(ABC):
    """Supplies ``γ_r`` per resource and ``γ_p`` per path each iteration."""

    @abstractmethod
    def resource_gamma(self, resource: str) -> float:
        """Current step size for a resource price update."""

    @abstractmethod
    def path_gamma(self, path: PathKey) -> float:
        """Current step size for a path price update."""

    def observe(self, congested_resources: Iterable[str],
                congested_paths: Iterable[PathKey]) -> None:
        """Feed back this iteration's congestion state.

        Called once per iteration after constraint evaluation; fixed
        policies ignore it.
        """

    def reset(self) -> None:
        """Return to the initial configuration (between optimizer runs)."""


class FixedStepSize(StepSizePolicy):
    """A single constant γ for all resources and paths.

    Section 5.2 assumes ``γ_r = γ_p = γ`` for a fair trade-off between
    resource allocation and latency; distinct values are still supported
    for ablations.
    """

    def __init__(self, gamma: float, path_gamma: float | None = None) -> None:
        if gamma <= 0.0:
            raise OptimizationError(f"step size must be positive, got {gamma!r}")
        self._gamma = float(gamma)
        self._path_gamma = float(path_gamma) if path_gamma is not None else self._gamma
        if self._path_gamma <= 0.0:
            raise OptimizationError(
                f"path step size must be positive, got {path_gamma!r}"
            )

    def resource_gamma(self, resource: str) -> float:
        return self._gamma

    def path_gamma(self, path: PathKey) -> float:
        return self._path_gamma

    def __repr__(self) -> str:
        return f"FixedStepSize(gamma={self._gamma}, path_gamma={self._path_gamma})"


class AdaptiveStepSize(StepSizePolicy):
    """The paper's multiplicative congestion heuristic.

    While a resource stays congested its γ doubles every iteration (capped
    at ``max_gamma`` to keep the arithmetic finite); the γ of every path
    that traverses the resource doubles with it.  A path violating its own
    critical-time constraint doubles too, even when no resource on it is
    congested — path prices are driven by the same gradient-projection
    update, so a stalled latency constraint needs the same acceleration as
    a stalled capacity constraint.  The moment a trigger clears, the γ it
    was sustaining snaps back to ``initial_gamma``.

    The two path triggers keep *independent* doubling states, and
    :meth:`path_gamma` serves the largest currently-active one.  The
    isolation matters: a path's constraint typically first becomes violated
    the instant its resources decongest (the price collapse lets latencies
    jump), and if the direct violation inherited the γ already escalated by
    several iterations of resource coverage, the very first Eq. 9 step
    would be taken at ``max_gamma`` — large enough to slam latencies
    between their clamps and lock the iteration into a limit cycle.
    Starting each cause's escalation from ``initial_gamma`` keeps the first
    corrective step small and only accelerates *persistent* stalls.

    The paper obtained its best results starting from γ = 1.

    Deviation from the paper: growth is capped at ``max_gamma`` (default 8).
    With our reconstructed Figure-4 topology, unbounded doubling overshoots
    so far that latencies slam between their clamps and the iteration never
    settles; a modest cap preserves the heuristic's speedup (≈2× faster
    settling than fixed γ = 1) while keeping the prices stable.
    """

    def __init__(self, taskset: TaskSet, initial_gamma: float = 1.0,
                 growth: float = 2.0, max_gamma: float = 8.0) -> None:
        if initial_gamma <= 0.0:
            raise OptimizationError(
                f"initial step size must be positive, got {initial_gamma!r}"
            )
        if growth <= 1.0:
            raise OptimizationError(f"growth must exceed 1, got {growth!r}")
        self.initial_gamma = float(initial_gamma)
        self.growth = float(growth)
        self.max_gamma = float(max_gamma)
        self._paths_by_resource = self._index_paths(taskset)
        self._resource_gamma: Dict[str, float] = {}
        self._path_gamma: Dict[PathKey, float] = {}
        self._cover_gamma: Dict[PathKey, float] = {}
        self._direct_gamma: Dict[PathKey, float] = {}
        self.reset()

    @staticmethod
    def _index_paths(taskset: TaskSet) -> Dict[str, Tuple[PathKey, ...]]:
        """Which paths traverse each resource (a path traverses ``r`` when
        any of its subtasks runs on ``r``)."""
        index: Dict[str, list] = {r: [] for r in taskset.resources}
        for task in taskset.tasks:
            resource_of = {s.name: s.resource for s in task.subtasks}
            for i, path in enumerate(task.graph.paths):
                key = PathKey(task.name, i)
                for resource in {resource_of[s] for s in path}:
                    index[resource].append(key)
        return {r: tuple(paths) for r, paths in index.items()}

    def reset(self) -> None:
        self._resource_gamma = {
            r: self.initial_gamma for r in self._paths_by_resource
        }
        all_paths: Set[PathKey] = set()
        for paths in self._paths_by_resource.values():
            all_paths.update(paths)
        self._path_gamma = {p: self.initial_gamma for p in all_paths}
        self._cover_gamma = {p: self.initial_gamma for p in all_paths}
        self._direct_gamma = {p: self.initial_gamma for p in all_paths}

    def resource_gamma(self, resource: str) -> float:
        return self._resource_gamma.get(resource, self.initial_gamma)

    def path_gamma(self, path: PathKey) -> float:
        return self._path_gamma.get(path, self.initial_gamma)

    def observe(self, congested_resources: Iterable[str],
                congested_paths: Iterable[PathKey]) -> None:
        congested = set(congested_resources)
        direct = set(congested_paths)
        covered: Set[PathKey] = set()
        for resource in self._paths_by_resource:
            if resource in congested:
                self._resource_gamma[resource] = min(
                    self._resource_gamma[resource] * self.growth,
                    self.max_gamma,
                )
                covered.update(self._paths_by_resource[resource])
            else:
                self._resource_gamma[resource] = self.initial_gamma
        for path in self._path_gamma:
            if path in covered:
                self._cover_gamma[path] = min(
                    self._cover_gamma[path] * self.growth, self.max_gamma
                )
            else:
                self._cover_gamma[path] = self.initial_gamma
            if path in direct:
                self._direct_gamma[path] = min(
                    self._direct_gamma[path] * self.growth, self.max_gamma
                )
            else:
                self._direct_gamma[path] = self.initial_gamma
            # Serve the largest active escalation; neither trigger active
            # means the step snaps back to the starting γ.
            boosts = []
            if path in covered:
                boosts.append(self._cover_gamma[path])
            if path in direct:
                boosts.append(self._direct_gamma[path])
            self._path_gamma[path] = (
                max(boosts) if boosts else self.initial_gamma
            )

    def __repr__(self) -> str:
        return (
            f"AdaptiveStepSize(initial_gamma={self.initial_gamma}, "
            f"growth={self.growth}, max_gamma={self.max_gamma})"
        )
