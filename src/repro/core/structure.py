"""Precompiled array structure of a :class:`~repro.model.task.TaskSet`.

The compiled :class:`TaskSetStructure` is the system's **canonical**
representation of a task set: the vectorized LLA backend iterates over it,
the sharded engine partitions it, the always-on service caches and
snapshots it, and the distributed runtime derives its per-round
observations from it.  Compiling the workload's *shape* — which subtask
runs on which resource, which paths contain which subtasks, per-subtask
model coefficients and latency bounds — once per run (and once more after
every model mutation) is what turns the per-iteration cost from thousands
of dict lookups and method dispatches into a handful of array operations.

Layout conventions, chosen so that every batched reduction visits its
operands in **exactly the same order as the scalar loops** (bitwise-equal
partial sums, so the two backends produce identical iterates, not merely
close ones):

* tasks are numbered in **name-sorted order** and resources in
  **name-sorted order** — the canonical compile order, so equal task sets
  compile to byte-identical arrays regardless of declaration order (the
  in-repo workload factories all declare tasks name-sorted, which keeps
  the canonical order equal to the scalar backend's declaration-order
  loops and preserves bitwise backend parity);
* subtasks are numbered globally in (canonical) task order, then per-task
  declaration order;
* paths are numbered task-by-task in :attr:`SubtaskGraph.paths` order, so
  each task's paths occupy one contiguous index range;
* every float segment sum goes through ``np.bincount(ids, weights=...)``,
  whose accumulation is a strictly sequential C loop in input order.
  ``np.add.reduceat`` is deliberately avoided for floats: its inner
  reduce uses unrolled/pairwise partial sums, which reassociate and drift
  from the scalar loops by an ulp — enough to flip a congestion branch.

A structure is serializable (:func:`structure_to_dict` /
:func:`structure_from_dict`, mirroring :mod:`repro.model.serialize`) and
fingerprinted (:attr:`TaskSetStructure.fingerprint`, a SHA-256 over the
canonical payload via :func:`repro.model.fingerprint.structure_fingerprint`).
Because compilation is canonical, permuted-but-equal task sets produce the
same structure fingerprint; checkpoints and snapshots stamped with it can
be validated on restore, and corrupt payloads are detected by the hash.

Only the paper's closed-form model family compiles: power-law share
functions (:class:`HyperbolicShare`, :class:`PowerLawShare`, optionally
wrapped in one :class:`CorrectedShare`) and linear or inelastic utilities.
Anything else raises :class:`~repro.errors.OptimizationError` at
compile time — run those workloads on the scalar backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ModelError, OptimizationError
from repro.core.state import PathKey
from repro.model.fingerprint import structure_fingerprint
from repro.model.share import CorrectedShare, HyperbolicShare, PowerLawShare
from repro.model.task import Task, TaskSet
from repro.model.utility import InelasticUtility, LinearUtility

__all__ = [
    "TaskSetStructure",
    "compile_structure",
    "structure_to_dict",
    "structure_from_dict",
]

#: Utility-kind codes in the per-task arrays.
UTILITY_LINEAR = 0
UTILITY_INELASTIC = 1

#: Serialization format version (bumped on incompatible layout changes).
_STRUCTURE_FORMAT_VERSION = 1

#: Integer index arrays and their serialization order.
_INDEX_ARRAYS = (
    "sub_resource", "sub_task_ids", "path_sub_flat", "path_ids_flat",
    "sub_path_flat", "sub_ids_flat", "task_path_starts", "task_sub_starts",
)
#: Float64 model/shape arrays and their serialization order.
_FLOAT_ARRAYS = (
    "sub_exec", "weights", "pull_base", "alpha", "cost", "err", "inv_exp",
    "lo", "hi", "availability", "path_crit", "ut_kc", "ut_slope", "ut_umax",
    "ut_crit",
)


@dataclass
class TaskSetStructure:
    """A :class:`TaskSet` compiled into flat numpy arrays.

    Static shape data (orderings, incidence) is immutable after
    compilation; model coefficients that can change at run time — share
    parameters, latency bounds, availabilities — live in arrays refreshed
    in place by :meth:`refresh_model`.

    ``taskset`` is the bound source task set, or ``None`` for structures
    rebuilt from a serialized payload (:func:`structure_from_dict`) — an
    unbound structure can drive an engine but cannot
    :meth:`refresh_model`.
    """

    taskset: Optional[TaskSet]
    max_latency_factor: float

    # -- orderings (static) -----------------------------------------------------
    subtask_names: Tuple[str, ...] = ()
    resource_names: Tuple[str, ...] = ()
    task_names: Tuple[str, ...] = ()
    path_keys: Tuple[PathKey, ...] = ()

    # -- incidence (static) -----------------------------------------------------
    #: resource index of each subtask, shape (S,)
    sub_resource: np.ndarray = field(default=None)
    #: task index of each subtask, shape (S,)
    sub_task_ids: np.ndarray = field(default=None)
    #: subtask indices flattened path-by-path (path order), shape (Σ|p|,)
    path_sub_flat: np.ndarray = field(default=None)
    #: owning path index of each ``path_sub_flat`` entry, shape (Σ|p|,)
    path_ids_flat: np.ndarray = field(default=None)
    #: path indices flattened subtask-by-subtask (ascending), shape (Σ,)
    sub_path_flat: np.ndarray = field(default=None)
    #: owning subtask index of each ``sub_path_flat`` entry, shape (Σ,)
    sub_ids_flat: np.ndarray = field(default=None)
    #: start offset of each task's path segment, shape (T,)
    task_path_starts: np.ndarray = field(default=None)
    #: start offset of each task's subtask segment, shape (T+1,) — the
    #: trailing sentinel makes ``starts[t]:starts[t+1]`` a valid slice.
    task_sub_starts: np.ndarray = field(default=None)
    #: whether path p traverses resource r, shape (P, R) bool
    path_res_inc: np.ndarray = field(default=None)
    #: WCET of each subtask, shape (S,)
    sub_exec: np.ndarray = field(default=None)

    # -- per-subtask model (refreshable) ----------------------------------------
    #: aggregation weight w_s, shape (S,)
    weights: np.ndarray = field(default=None)
    #: w_s · slope_i — the utility component of the Eq. 7 pull, shape (S,)
    pull_base: np.ndarray = field(default=None)
    #: power-law exponent α_s, shape (S,)
    alpha: np.ndarray = field(default=None)
    #: power-law coefficient (c_s + l_r), shape (S,)
    cost: np.ndarray = field(default=None)
    #: additive correction error e_s (0 when uncorrected), shape (S,)
    err: np.ndarray = field(default=None)
    #: whether the base share is the hyperbolic special case, shape (S,) bool
    hyper_mask: np.ndarray = field(default=None)
    #: 1 / (α_s + 1) — the stationarity-solve exponent, shape (S,)
    inv_exp: np.ndarray = field(default=None)
    #: latency clamp bounds, shape (S,)
    lo: np.ndarray = field(default=None)
    hi: np.ndarray = field(default=None)

    # -- per-resource / per-path / per-task model -------------------------------
    #: availability B_r, shape (R,) (refreshable)
    availability: np.ndarray = field(default=None)
    #: critical time of the path's owning task, shape (P,)
    path_crit: np.ndarray = field(default=None)
    #: utility kind codes, shape (T,)
    ut_kind: np.ndarray = field(default=None)
    #: precomputed k_i · C_i for linear utilities, shape (T,)
    ut_kc: np.ndarray = field(default=None)
    #: linear slope, shape (T,)
    ut_slope: np.ndarray = field(default=None)
    #: inelastic step height u_max, shape (T,)
    ut_umax: np.ndarray = field(default=None)
    #: inelastic step edge (the utility's own critical time), shape (T,)
    ut_crit: np.ndarray = field(default=None)

    #: cached canonical fingerprint; invalidated by :meth:`refresh_model`.
    _fingerprint: Optional[str] = field(default=None, repr=False)

    @property
    def n_subtasks(self) -> int:
        return len(self.subtask_names)

    @property
    def n_resources(self) -> int:
        return len(self.resource_names)

    @property
    def n_paths(self) -> int:
        return len(self.path_keys)

    @property
    def fingerprint(self) -> str:
        """SHA-256 fingerprint of the compiled arrays (lazily computed).

        Canonical compilation makes this order-insensitive: equal task
        sets — regardless of task/resource declaration order — compile to
        identical arrays and therefore identical fingerprints.  The hash
        covers the refreshable model arrays too, so a model mutation
        (after :meth:`refresh_model`) changes the fingerprint exactly as
        it changes the optimization problem.
        """
        if self._fingerprint is None:
            self._fingerprint = structure_fingerprint(_payload_dict(self))
        return self._fingerprint

    def task_index(self, task_name: str) -> int:
        """Canonical index of ``task_name`` (binary search, names sorted)."""
        names = self.task_names
        lo, hi = 0, len(names)
        while lo < hi:
            mid = (lo + hi) // 2
            if names[mid] < task_name:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(names) and names[lo] == task_name:
            return lo
        raise ModelError(f"unknown task {task_name!r} in compiled structure")

    def task_subtask_slice(self, task_idx: int) -> slice:
        """Global subtask index range of task ``task_idx``."""
        starts = self.task_sub_starts
        return slice(int(starts[task_idx]), int(starts[task_idx + 1]))

    def task_path_slice(self, task_idx: int) -> slice:
        """Global path index range of task ``task_idx``."""
        starts = self.task_path_starts
        end = int(starts[task_idx + 1]) if task_idx + 1 < len(starts) \
            else self.n_paths
        return slice(int(starts[task_idx]), end)

    def refresh_model(self) -> None:
        """Re-read the mutable model state from the task set.

        Mirrors :meth:`LatencyAllocator.refresh_bounds` plus availability:
        error correction swaps/retunes share functions and
        :meth:`TaskSet.set_availability` replaces resources, so share
        coefficients, latency clamps and B_r must all be recomputed.
        Invalidates the cached :attr:`fingerprint`.
        """
        if self.taskset is None:
            raise ModelError(
                "cannot refresh_model on an unbound structure "
                "(deserialized without a task set)"
            )
        _fill_model_arrays(self, self.taskset, self.max_latency_factor)
        self._fingerprint = None


def _unsupported(what: str) -> OptimizationError:
    return OptimizationError(
        f"backend='vectorized' does not support {what}; "
        "use backend='scalar' for this workload"
    )


def _share_params(taskset: TaskSet,
                  subtask_name: str) -> Tuple[float, float, float, bool]:
    """(alpha, cost, err, is_hyperbolic) of one subtask's share function."""
    fn = taskset.share_function(subtask_name)
    err = 0.0
    base = fn
    if isinstance(base, CorrectedShare):
        err = base.error
        base = base.base
        if isinstance(base, CorrectedShare):
            raise _unsupported(
                f"nested CorrectedShare on subtask {subtask_name!r}"
            )
    if isinstance(base, HyperbolicShare):
        return 1.0, base.cost, err, True
    if isinstance(base, PowerLawShare):
        return base.alpha, base.cost, err, False
    raise _unsupported(
        f"share function {type(base).__name__} on subtask {subtask_name!r}"
    )


def _canonical_tasks(taskset: TaskSet) -> List[Task]:
    """The canonical (name-sorted) compile order of ``taskset``'s tasks."""
    return sorted(taskset.tasks, key=lambda t: t.name)


def _fill_model_arrays(s: TaskSetStructure, taskset: TaskSet,
                       max_latency_factor: float) -> None:
    """(Re)compute the refreshable per-subtask/per-resource arrays."""
    n = s.n_subtasks
    alpha = np.empty(n)
    cost = np.empty(n)
    err = np.empty(n)
    hyper = np.empty(n, dtype=bool)
    lo = np.empty(n)
    hi = np.empty(n)
    i = 0
    for task in _canonical_tasks(taskset):
        for sub in task.subtasks:
            alpha[i], cost[i], err[i], hyper[i] = _share_params(
                taskset, sub.name
            )
            # Identical bound logic to LatencyAllocator.refresh_bounds.
            fn = taskset.share_function(sub.name)
            avail = taskset.resources[sub.resource].availability
            low = fn.min_latency(avail)
            high = task.critical_time * max_latency_factor
            if task.trigger is not None:
                min_share = task.trigger.mean_rate() * sub.exec_time
                if 0.0 < min_share < avail:
                    high = min(high, fn.latency_for_share(min_share))
            lo[i] = low
            hi[i] = max(low, high)
            i += 1
    s.alpha = alpha
    s.cost = cost
    s.err = err
    s.hyper_mask = hyper
    s.inv_exp = 1.0 / (alpha + 1.0)
    s.lo = lo
    s.hi = hi
    s.availability = np.array(
        [taskset.resources[r].availability for r in s.resource_names]
    )


def compile_structure(taskset: TaskSet,
                      max_latency_factor: float = 1.0) -> TaskSetStructure:
    """Compile ``taskset`` into its canonical structure.

    Tasks and resources are visited in name-sorted order, so two task sets
    describing the same problem compile to byte-identical arrays (and the
    same :attr:`~TaskSetStructure.fingerprint`) regardless of declaration
    order.  Raises :class:`~repro.errors.OptimizationError` when the
    workload falls outside the closed-form model family (see module
    docstring).
    """
    tasks = _canonical_tasks(taskset)
    resource_names = tuple(sorted(taskset.resources))
    resource_index = {r: i for i, r in enumerate(resource_names)}

    subtask_names = []
    sub_resource = []
    sub_task_ids = []
    sub_exec = []
    weights = []
    pull_base = []
    path_keys = []
    path_crit = []
    path_sub_flat = []
    path_ids_flat = []
    task_path_starts = []
    task_sub_starts = [0]
    sub_paths = []  # per-subtask list of global path indices, global order
    ut_kind = []
    ut_kc = []
    ut_slope = []
    ut_umax = []
    ut_crit = []

    sub_index = {}
    for task in tasks:
        utility = task.utility
        if isinstance(utility, LinearUtility):
            slope = utility.slope
            ut_kind.append(UTILITY_LINEAR)
            ut_kc.append(utility.k * utility.critical_time)
            ut_slope.append(slope)
            ut_umax.append(0.0)
            ut_crit.append(0.0)
        elif isinstance(utility, InelasticUtility):
            # The scalar closed form treats inelastic tasks with zero
            # utility pull; only the paper's step shape is representable.
            slope = 0.0
            ut_kind.append(UTILITY_INELASTIC)
            ut_kc.append(0.0)
            ut_slope.append(0.0)
            ut_umax.append(utility.u_max)
            ut_crit.append(utility.critical_time)
        else:
            raise _unsupported(
                f"utility {type(utility).__name__} on task {task.name!r} "
                "(needs the numeric per-task solver)"
            )

        task_idx = len(task_path_starts)
        for sub in task.subtasks:
            sub_index[sub.name] = len(subtask_names)
            subtask_names.append(sub.name)
            sub_resource.append(resource_index[sub.resource])
            sub_task_ids.append(task_idx)
            sub_exec.append(float(sub.exec_time))
            w = task.weight(sub.name)
            weights.append(w)
            pull_base.append(w * slope)
            sub_paths.append([])
        task_sub_starts.append(len(subtask_names))

        task_path_starts.append(len(path_keys))
        for p_idx, path in enumerate(task.graph.paths):
            global_path = len(path_keys)
            path_keys.append(PathKey(task.name, p_idx))
            path_crit.append(task.critical_time)
            for name in path:
                path_sub_flat.append(sub_index[name])
                path_ids_flat.append(global_path)
        # Subtask→path membership in the scalar allocator's order: for each
        # subtask, graph.paths_through gives ascending local path indices.
        base = task_path_starts[-1]
        for sub in task.subtasks:
            on_paths = task.graph.paths_through(sub.name)
            if not on_paths:
                # Cannot happen with a root-to-leaf path enumeration, but
                # an empty reduceat segment would silently mis-sum.
                raise _unsupported(
                    f"subtask {sub.name!r} lying on no root-to-leaf path"
                )
            sub_paths[sub_index[sub.name]] = [base + i for i in on_paths]

    structure = TaskSetStructure(
        taskset=taskset,
        max_latency_factor=float(max_latency_factor),
        subtask_names=tuple(subtask_names),
        resource_names=resource_names,
        task_names=tuple(t.name for t in tasks),
        path_keys=tuple(path_keys),
    )

    structure.sub_resource = np.asarray(sub_resource, dtype=np.intp)
    structure.sub_task_ids = np.asarray(sub_task_ids, dtype=np.intp)
    structure.path_sub_flat = np.asarray(path_sub_flat, dtype=np.intp)
    structure.path_ids_flat = np.asarray(path_ids_flat, dtype=np.intp)
    structure.task_path_starts = np.asarray(task_path_starts, dtype=np.intp)
    structure.task_sub_starts = np.asarray(task_sub_starts, dtype=np.intp)
    structure.sub_exec = np.asarray(sub_exec)
    structure.weights = np.asarray(weights)
    structure.pull_base = np.asarray(pull_base)
    structure.path_crit = np.asarray(path_crit)
    structure.ut_kind = np.asarray(ut_kind, dtype=np.int8)
    structure.ut_kc = np.asarray(ut_kc)
    structure.ut_slope = np.asarray(ut_slope)
    structure.ut_umax = np.asarray(ut_umax)
    structure.ut_crit = np.asarray(ut_crit)

    sub_path_flat = []
    sub_ids_flat = []
    for s_idx, paths in enumerate(sub_paths[: len(subtask_names)]):
        sub_path_flat.extend(paths)
        sub_ids_flat.extend([s_idx] * len(paths))
    structure.sub_path_flat = np.asarray(sub_path_flat, dtype=np.intp)
    structure.sub_ids_flat = np.asarray(sub_ids_flat, dtype=np.intp)

    inc = np.zeros((len(path_keys), len(resource_names)), dtype=bool)
    for s_idx, paths in enumerate(sub_paths[: len(subtask_names)]):
        for p_idx in paths:
            inc[p_idx, sub_resource[s_idx]] = True
    structure.path_res_inc = inc

    _fill_model_arrays(structure, taskset, structure.max_latency_factor)
    return structure


# -- serialization -----------------------------------------------------------


def _payload_dict(s: TaskSetStructure) -> Dict[str, Any]:
    """The canonical JSON-safe payload (everything but the fingerprint)."""
    payload: Dict[str, Any] = {
        "format": _STRUCTURE_FORMAT_VERSION,
        "max_latency_factor": float(s.max_latency_factor),
        "subtask_names": list(s.subtask_names),
        "resource_names": list(s.resource_names),
        "task_names": list(s.task_names),
        "path_keys": [[k.task, int(k.index)] for k in s.path_keys],
        "ut_kind": [int(v) for v in s.ut_kind.tolist()],
        "hyper_mask": [bool(v) for v in s.hyper_mask.tolist()],
        "path_res_inc": [
            [bool(v) for v in row] for row in s.path_res_inc.tolist()
        ],
    }
    for name in _INDEX_ARRAYS:
        payload[name] = [int(v) for v in getattr(s, name).tolist()]
    for name in _FLOAT_ARRAYS:
        # float64 → repr → float64 round-trips exactly, so JSON transport
        # preserves the arrays bit-for-bit.
        payload[name] = [float(v) for v in getattr(s, name).tolist()]
    return payload


def structure_to_dict(structure: TaskSetStructure) -> Dict[str, Any]:
    """A JSON-serializable dict capturing ``structure`` bit-exactly.

    The payload embeds the structure's canonical fingerprint;
    :func:`structure_from_dict` recomputes and verifies it, so truncated
    or corrupted payloads are detected rather than silently deserialized.
    """
    payload = _payload_dict(structure)
    payload["fingerprint"] = structure.fingerprint
    return payload


def structure_from_dict(
    data: Mapping[str, Any],
    taskset: Optional[TaskSet] = None,
) -> TaskSetStructure:
    """Rebuild a :class:`TaskSetStructure` from :func:`structure_to_dict`.

    Verifies the embedded fingerprint against a recomputation over the
    payload: any mutation — a truncated array, a flipped coefficient, a
    renamed subtask — raises :class:`~repro.errors.ModelError`, which
    restore paths demote to a cold reset.  ``taskset`` optionally rebinds
    the structure to a live task set (required for later
    :meth:`~TaskSetStructure.refresh_model` calls); the caller is
    responsible for the binding being the problem the payload describes
    (e.g. via task-set fingerprint equality).
    """
    try:
        version = int(data["format"])
        if version != _STRUCTURE_FORMAT_VERSION:
            raise ModelError(
                f"unsupported structure format {version!r} "
                f"(expected {_STRUCTURE_FORMAT_VERSION})"
            )
        stamp = data["fingerprint"]
        if not isinstance(stamp, str):
            raise ModelError("structure payload has a non-string fingerprint")
        structure = TaskSetStructure(
            taskset=taskset,
            max_latency_factor=float(data["max_latency_factor"]),
            subtask_names=tuple(str(n) for n in data["subtask_names"]),
            resource_names=tuple(str(n) for n in data["resource_names"]),
            task_names=tuple(str(n) for n in data["task_names"]),
            path_keys=tuple(
                PathKey(str(t), int(i)) for t, i in data["path_keys"]
            ),
        )
        for name in _INDEX_ARRAYS:
            setattr(structure, name, np.asarray(data[name], dtype=np.intp))
        for name in _FLOAT_ARRAYS:
            setattr(
                structure, name, np.asarray(data[name], dtype=np.float64)
            )
        structure.ut_kind = np.asarray(data["ut_kind"], dtype=np.int8)
        structure.hyper_mask = np.asarray(data["hyper_mask"], dtype=bool)
        structure.path_res_inc = np.asarray(
            data["path_res_inc"], dtype=bool
        ).reshape(structure.n_paths, structure.n_resources)
    except ModelError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelError(f"malformed structure payload: {exc}") from exc
    _check_shapes(structure)
    recomputed = structure_fingerprint(_payload_dict(structure))
    if recomputed != stamp:
        raise ModelError(
            "structure payload failed fingerprint verification "
            "(corrupted or hand-edited)"
        )
    structure._fingerprint = recomputed
    return structure


def _check_shapes(s: TaskSetStructure) -> None:
    """Internal consistency of a deserialized structure's array shapes."""
    n_sub, n_res = s.n_subtasks, s.n_resources
    n_task, n_path = len(s.task_names), s.n_paths
    expected = {
        "sub_resource": n_sub, "sub_task_ids": n_sub, "sub_exec": n_sub,
        "weights": n_sub, "pull_base": n_sub, "alpha": n_sub, "cost": n_sub,
        "err": n_sub, "hyper_mask": n_sub, "inv_exp": n_sub, "lo": n_sub,
        "hi": n_sub, "availability": n_res, "path_crit": n_path,
        "task_path_starts": n_task, "task_sub_starts": n_task + 1,
        "ut_kind": n_task, "ut_kc": n_task, "ut_slope": n_task,
        "ut_umax": n_task, "ut_crit": n_task,
    }
    for name, size in expected.items():
        actual = len(getattr(s, name))
        if actual != size:
            raise ModelError(
                f"structure payload array {name!r} has length {actual}, "
                f"expected {size}"
            )
    if len(s.path_sub_flat) != len(s.path_ids_flat):
        raise ModelError("structure payload path flattening is inconsistent")
    if len(s.sub_path_flat) != len(s.sub_ids_flat):
        raise ModelError(
            "structure payload subtask flattening is inconsistent"
        )
    if s.path_res_inc.shape != (n_path, n_res):
        raise ModelError(
            f"structure payload path_res_inc has shape "
            f"{s.path_res_inc.shape}, expected {(n_path, n_res)}"
        )
