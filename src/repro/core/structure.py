"""Precompiled array structure of a :class:`~repro.model.task.TaskSet`.

The vectorized LLA backend (:mod:`repro.core.vectorized`) needs the
workload's *shape* — which subtask runs on which resource, which paths
contain which subtasks, per-subtask model coefficients and latency bounds —
as flat numpy arrays instead of the dict-of-dicts form the scalar code
walks.  Compiling that shape once per run (and once more after every model
mutation) is what turns the per-iteration cost from thousands of dict
lookups and method dispatches into a handful of array operations.

Layout conventions, chosen so that every batched reduction visits its
operands in **exactly the same order as the scalar loops** (bitwise-equal
partial sums, so the two backends produce identical iterates, not merely
close ones):

* subtasks are numbered globally in task order, then per-task declaration
  order — the same order as :attr:`TaskSet.all_subtasks`;
* resources are numbered in :attr:`TaskSet.resources` insertion order;
* paths are numbered task-by-task in :attr:`SubtaskGraph.paths` order, so
  each task's paths occupy one contiguous index range;
* every float segment sum goes through ``np.bincount(ids, weights=...)``,
  whose accumulation is a strictly sequential C loop in input order.
  ``np.add.reduceat`` is deliberately avoided for floats: its inner
  reduce uses unrolled/pairwise partial sums, which reassociate and drift
  from the scalar loops by an ulp — enough to flip a congestion branch.

Only the paper's closed-form model family compiles: power-law share
functions (:class:`HyperbolicShare`, :class:`PowerLawShare`, optionally
wrapped in one :class:`CorrectedShare`) and linear or inelastic utilities.
Anything else raises :class:`~repro.errors.OptimizationError` at
compile time — run those workloads on the scalar backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.errors import OptimizationError
from repro.core.state import PathKey
from repro.model.share import CorrectedShare, HyperbolicShare, PowerLawShare
from repro.model.task import TaskSet
from repro.model.utility import InelasticUtility, LinearUtility

__all__ = ["TaskSetStructure", "compile_structure"]

#: Utility-kind codes in the per-task arrays.
UTILITY_LINEAR = 0
UTILITY_INELASTIC = 1


@dataclass
class TaskSetStructure:
    """A :class:`TaskSet` compiled into flat numpy arrays.

    Static shape data (orderings, incidence) is immutable after
    compilation; model coefficients that can change at run time — share
    parameters, latency bounds, availabilities — live in arrays refreshed
    in place by :meth:`refresh_model`.
    """

    taskset: TaskSet
    max_latency_factor: float

    # -- orderings (static) -----------------------------------------------------
    subtask_names: Tuple[str, ...] = ()
    resource_names: Tuple[str, ...] = ()
    task_names: Tuple[str, ...] = ()
    path_keys: Tuple[PathKey, ...] = ()

    # -- incidence (static) -----------------------------------------------------
    #: resource index of each subtask, shape (S,)
    sub_resource: np.ndarray = field(default=None)
    #: task index of each subtask, shape (S,)
    sub_task_ids: np.ndarray = field(default=None)
    #: subtask indices flattened path-by-path (path order), shape (Σ|p|,)
    path_sub_flat: np.ndarray = field(default=None)
    #: owning path index of each ``path_sub_flat`` entry, shape (Σ|p|,)
    path_ids_flat: np.ndarray = field(default=None)
    #: path indices flattened subtask-by-subtask (ascending), shape (Σ,)
    sub_path_flat: np.ndarray = field(default=None)
    #: owning subtask index of each ``sub_path_flat`` entry, shape (Σ,)
    sub_ids_flat: np.ndarray = field(default=None)
    #: start offset of each task's path segment, shape (T,)
    task_path_starts: np.ndarray = field(default=None)
    #: whether path p traverses resource r, shape (P, R) bool
    path_res_inc: np.ndarray = field(default=None)

    # -- per-subtask model (refreshable) ----------------------------------------
    #: aggregation weight w_s, shape (S,)
    weights: np.ndarray = field(default=None)
    #: w_s · slope_i — the utility component of the Eq. 7 pull, shape (S,)
    pull_base: np.ndarray = field(default=None)
    #: power-law exponent α_s, shape (S,)
    alpha: np.ndarray = field(default=None)
    #: power-law coefficient (c_s + l_r), shape (S,)
    cost: np.ndarray = field(default=None)
    #: additive correction error e_s (0 when uncorrected), shape (S,)
    err: np.ndarray = field(default=None)
    #: whether the base share is the hyperbolic special case, shape (S,) bool
    hyper_mask: np.ndarray = field(default=None)
    #: 1 / (α_s + 1) — the stationarity-solve exponent, shape (S,)
    inv_exp: np.ndarray = field(default=None)
    #: latency clamp bounds, shape (S,)
    lo: np.ndarray = field(default=None)
    hi: np.ndarray = field(default=None)

    # -- per-resource / per-path / per-task model -------------------------------
    #: availability B_r, shape (R,) (refreshable)
    availability: np.ndarray = field(default=None)
    #: critical time of the path's owning task, shape (P,)
    path_crit: np.ndarray = field(default=None)
    #: utility kind codes, shape (T,)
    ut_kind: np.ndarray = field(default=None)
    #: precomputed k_i · C_i for linear utilities, shape (T,)
    ut_kc: np.ndarray = field(default=None)
    #: linear slope, shape (T,)
    ut_slope: np.ndarray = field(default=None)
    #: inelastic step height u_max, shape (T,)
    ut_umax: np.ndarray = field(default=None)
    #: inelastic step edge (the utility's own critical time), shape (T,)
    ut_crit: np.ndarray = field(default=None)

    @property
    def n_subtasks(self) -> int:
        return len(self.subtask_names)

    @property
    def n_resources(self) -> int:
        return len(self.resource_names)

    @property
    def n_paths(self) -> int:
        return len(self.path_keys)

    def refresh_model(self) -> None:
        """Re-read the mutable model state from the task set.

        Mirrors :meth:`LatencyAllocator.refresh_bounds` plus availability:
        error correction swaps/retunes share functions and
        :meth:`TaskSet.set_availability` replaces resources, so share
        coefficients, latency clamps and B_r must all be recomputed.
        """
        _fill_model_arrays(self, self.taskset, self.max_latency_factor)


def _unsupported(what: str) -> OptimizationError:
    return OptimizationError(
        f"backend='vectorized' does not support {what}; "
        "use backend='scalar' for this workload"
    )


def _share_params(taskset: TaskSet,
                  subtask_name: str) -> Tuple[float, float, float, bool]:
    """(alpha, cost, err, is_hyperbolic) of one subtask's share function."""
    fn = taskset.share_function(subtask_name)
    err = 0.0
    base = fn
    if isinstance(base, CorrectedShare):
        err = base.error
        base = base.base
        if isinstance(base, CorrectedShare):
            raise _unsupported(
                f"nested CorrectedShare on subtask {subtask_name!r}"
            )
    if isinstance(base, HyperbolicShare):
        return 1.0, base.cost, err, True
    if isinstance(base, PowerLawShare):
        return base.alpha, base.cost, err, False
    raise _unsupported(
        f"share function {type(base).__name__} on subtask {subtask_name!r}"
    )


def _fill_model_arrays(s: TaskSetStructure, taskset: TaskSet,
                       max_latency_factor: float) -> None:
    """(Re)compute the refreshable per-subtask/per-resource arrays."""
    n = s.n_subtasks
    alpha = np.empty(n)
    cost = np.empty(n)
    err = np.empty(n)
    hyper = np.empty(n, dtype=bool)
    lo = np.empty(n)
    hi = np.empty(n)
    i = 0
    for task in taskset.tasks:
        for sub in task.subtasks:
            alpha[i], cost[i], err[i], hyper[i] = _share_params(
                taskset, sub.name
            )
            # Identical bound logic to LatencyAllocator.refresh_bounds.
            fn = taskset.share_function(sub.name)
            avail = taskset.resources[sub.resource].availability
            low = fn.min_latency(avail)
            high = task.critical_time * max_latency_factor
            if task.trigger is not None:
                min_share = task.trigger.mean_rate() * sub.exec_time
                if 0.0 < min_share < avail:
                    high = min(high, fn.latency_for_share(min_share))
            lo[i] = low
            hi[i] = max(low, high)
            i += 1
    s.alpha = alpha
    s.cost = cost
    s.err = err
    s.hyper_mask = hyper
    s.inv_exp = 1.0 / (alpha + 1.0)
    s.lo = lo
    s.hi = hi
    s.availability = np.array(
        [taskset.resources[r].availability for r in s.resource_names]
    )


def compile_structure(taskset: TaskSet,
                      max_latency_factor: float = 1.0) -> TaskSetStructure:
    """Compile ``taskset`` for the vectorized kernel.

    Raises :class:`~repro.errors.OptimizationError` when the workload falls
    outside the closed-form model family (see module docstring).
    """
    tasks = taskset.tasks
    resource_names = tuple(taskset.resources)
    resource_index = {r: i for i, r in enumerate(resource_names)}

    subtask_names = []
    sub_resource = []
    sub_task_ids = []
    weights = []
    pull_base = []
    path_keys = []
    path_crit = []
    path_sub_flat = []
    path_ids_flat = []
    task_path_starts = []
    sub_paths = []  # per-subtask list of global path indices, global order
    ut_kind = []
    ut_kc = []
    ut_slope = []
    ut_umax = []
    ut_crit = []

    sub_index = {}
    for task in tasks:
        utility = task.utility
        if isinstance(utility, LinearUtility):
            slope = utility.slope
            ut_kind.append(UTILITY_LINEAR)
            ut_kc.append(utility.k * utility.critical_time)
            ut_slope.append(slope)
            ut_umax.append(0.0)
            ut_crit.append(0.0)
        elif isinstance(utility, InelasticUtility):
            # The scalar closed form treats inelastic tasks with zero
            # utility pull; only the paper's step shape is representable.
            slope = 0.0
            ut_kind.append(UTILITY_INELASTIC)
            ut_kc.append(0.0)
            ut_slope.append(0.0)
            ut_umax.append(utility.u_max)
            ut_crit.append(utility.critical_time)
        else:
            raise _unsupported(
                f"utility {type(utility).__name__} on task {task.name!r} "
                "(needs the numeric per-task solver)"
            )

        task_idx = len(task_path_starts)
        for sub in task.subtasks:
            sub_index[sub.name] = len(subtask_names)
            subtask_names.append(sub.name)
            sub_resource.append(resource_index[sub.resource])
            sub_task_ids.append(task_idx)
            w = task.weight(sub.name)
            weights.append(w)
            pull_base.append(w * slope)
            sub_paths.append([])

        task_path_starts.append(len(path_keys))
        for p_idx, path in enumerate(task.graph.paths):
            global_path = len(path_keys)
            path_keys.append(PathKey(task.name, p_idx))
            path_crit.append(task.critical_time)
            for name in path:
                path_sub_flat.append(sub_index[name])
                path_ids_flat.append(global_path)
        # Subtask→path membership in the scalar allocator's order: for each
        # subtask, graph.paths_through gives ascending local path indices.
        base = task_path_starts[-1]
        for sub in task.subtasks:
            on_paths = task.graph.paths_through(sub.name)
            if not on_paths:
                # Cannot happen with a root-to-leaf path enumeration, but
                # an empty reduceat segment would silently mis-sum.
                raise _unsupported(
                    f"subtask {sub.name!r} lying on no root-to-leaf path"
                )
            sub_paths[sub_index[sub.name]] = [base + i for i in on_paths]

    structure = TaskSetStructure(
        taskset=taskset,
        max_latency_factor=float(max_latency_factor),
        subtask_names=tuple(subtask_names),
        resource_names=resource_names,
        task_names=tuple(t.name for t in tasks),
        path_keys=tuple(path_keys),
    )

    structure.sub_resource = np.asarray(sub_resource, dtype=np.intp)
    structure.sub_task_ids = np.asarray(sub_task_ids, dtype=np.intp)
    structure.path_sub_flat = np.asarray(path_sub_flat, dtype=np.intp)
    structure.path_ids_flat = np.asarray(path_ids_flat, dtype=np.intp)
    structure.task_path_starts = np.asarray(task_path_starts, dtype=np.intp)
    structure.weights = np.asarray(weights)
    structure.pull_base = np.asarray(pull_base)
    structure.path_crit = np.asarray(path_crit)
    structure.ut_kind = np.asarray(ut_kind, dtype=np.int8)
    structure.ut_kc = np.asarray(ut_kc)
    structure.ut_slope = np.asarray(ut_slope)
    structure.ut_umax = np.asarray(ut_umax)
    structure.ut_crit = np.asarray(ut_crit)

    sub_path_flat = []
    sub_ids_flat = []
    for s_idx, paths in enumerate(sub_paths[: len(subtask_names)]):
        sub_path_flat.extend(paths)
        sub_ids_flat.extend([s_idx] * len(paths))
    structure.sub_path_flat = np.asarray(sub_path_flat, dtype=np.intp)
    structure.sub_ids_flat = np.asarray(sub_ids_flat, dtype=np.intp)

    inc = np.zeros((len(path_keys), len(resource_names)), dtype=bool)
    for s_idx, paths in enumerate(sub_paths[: len(subtask_names)]):
        for p_idx in paths:
            inc[p_idx, sub_resource[s_idx]] = True
    structure.path_res_inc = inc

    _fill_model_arrays(structure, taskset, structure.max_latency_factor)
    return structure
