"""Batched numpy kernel for the LLA iteration.

``VectorizedEngine`` executes the exact iteration of
:meth:`LLAOptimizer._scalar_iteration` — Eq. 9 path-price step from the old
latencies, Eq. 7 closed-form allocation, Eq. 8 resource-price step,
congestion classification, step-size feedback, utility — as whole-array
operations over the structure precompiled by
:mod:`repro.core.structure`.

The two backends are *trajectory-identical*, not just approximately equal:
every reduction is ordered like its scalar counterpart (see the structure
module's layout notes), arithmetic uses the same expression shapes, and the
free-resource / zero-pull special cases of
:func:`~repro.core.allocation.stationary_latency` are reproduced as masks.
That matters because the adaptive step-size heuristic branches on strict
comparisons (``load > B_r + tol``): a one-ulp difference in a load flips a
doubling decision and the runs diverge visibly.  Parity tests assert
bitwise-equal traces over full figure runs.

Step-size handling: :class:`FixedStepSize` folds to two scalars;
:class:`AdaptiveStepSize` is re-implemented as array updates with
engine-owned γ state (the policy object is bypassed — its dicts stay at
their initial values); any other policy is driven through its public
per-name interface, which preserves semantics at scalar-ish speed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import OptimizationError, ShareError
from repro.core.allocation import _PULL_FLOOR
from repro.core.phases import PhaseTimers
from repro.core.state import PathKey
from repro.core.stepsize import AdaptiveStepSize, FixedStepSize, StepSizePolicy
from repro.core.structure import TaskSetStructure, compile_structure
from repro.model.task import TaskSet
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.optimizer import LLAConfig

__all__ = [
    "VectorizedEngine",
    "EngineStep",
    "StepArrays",
    "ObservedAssignment",
    "compute_loads",
    "observe_assignment",
    "gamma_spec",
    "make_gamma_supplier",
]

#: γ suppliers return either two scalars (fixed policy) or two arrays.
GammaPair = Tuple[Union[float, np.ndarray], Union[float, np.ndarray]]

#: A picklable description of a fixed/adaptive γ supplier (see
#: :func:`gamma_spec`) — what shard worker processes receive instead of a
#: policy object, which can drag a whole ``TaskSet`` through pickle.
GammaSpec = Tuple[Union[str, float], ...]


@dataclass
class EngineStep:
    """One iteration's outputs, materialized for the optimizer facade."""

    utility: float
    latencies: Dict[str, float]
    resource_prices: Dict[str, float]
    path_prices: Dict[PathKey, float]
    resource_loads: Dict[str, float]
    congested_resources: Tuple[str, ...]
    congested_paths: Tuple[PathKey, ...]
    critical_paths: Dict[str, float]


@dataclass
class StepArrays:
    """One iteration's outputs in array form (no dict materialization).

    ``mu``/``lam`` alias the engine's live dual state; the rest are fresh
    arrays.  This is what batched iteration (:meth:`VectorizedEngine.iterate`)
    and the sharded engine's merge path consume — materializing the
    :class:`EngineStep` dicts costs more than the arithmetic at 10k+
    subtasks.
    """

    lat: np.ndarray          #: per-subtask latencies, shape (S,)
    mu: np.ndarray           #: resource prices, shape (R,)
    lam: np.ndarray          #: path prices, shape (P,)
    loads: np.ndarray        #: per-resource loads, shape (R,)
    path_lat: np.ndarray     #: per-path latency sums, shape (P,)
    cong_r: np.ndarray       #: congested-resource mask, shape (R,) bool
    cong_p: np.ndarray       #: congested-path mask, shape (P,) bool
    per_task: np.ndarray     #: per-task utilities, shape (T,)
    crit: np.ndarray         #: per-task critical-path latencies, shape (T,)


class _FixedGammas:
    """γ supplier for an exact :class:`FixedStepSize` (two constants)."""

    def __init__(self, resource_gamma: float, path_gamma: float) -> None:
        self._gr = float(resource_gamma)
        self._gp = float(path_gamma)

    def gammas(self) -> GammaPair:
        return self._gr, self._gp

    def observe(self, cong_r: np.ndarray, cong_p: np.ndarray,
                cong_r_names: Tuple[str, ...],
                cong_p_keys: Tuple[PathKey, ...]) -> None:
        pass

    def reset(self) -> None:
        pass


class _AdaptiveGammas:
    """Array form of :meth:`AdaptiveStepSize.observe`.

    Owns the γ vectors itself; the policy object is not consulted per
    iteration (its dict state stays at the initial γ).
    """

    def __init__(self, initial_gamma: float, growth: float, max_gamma: float,
                 structure: TaskSetStructure) -> None:
        self._initial = float(initial_gamma)
        self._growth = float(growth)
        self._max = float(max_gamma)
        self._inc = structure.path_res_inc
        self._gr = np.full(structure.n_resources, self._initial)
        self._gp = np.full(structure.n_paths, self._initial)
        self._cover = np.full(structure.n_paths, self._initial)
        self._direct = np.full(structure.n_paths, self._initial)

    def gammas(self) -> GammaPair:
        return self._gr, self._gp

    def observe(self, cong_r: np.ndarray, cong_p: np.ndarray,
                cong_r_names: Tuple[str, ...],
                cong_p_keys: Tuple[PathKey, ...]) -> None:
        self._gr = np.where(
            cong_r, np.minimum(self._gr * self._growth, self._max),
            self._initial,
        )
        # Two independent escalation states per path (resource coverage
        # vs direct constraint violation); serve the largest active one.
        covered = (self._inc & cong_r).any(axis=1)
        self._cover = np.where(
            covered, np.minimum(self._cover * self._growth, self._max),
            self._initial,
        )
        self._direct = np.where(
            cong_p, np.minimum(self._direct * self._growth, self._max),
            self._initial,
        )
        active_max = np.maximum(
            np.where(covered, self._cover, -np.inf),
            np.where(cong_p, self._direct, -np.inf),
        )
        self._gp = np.where(covered | cong_p, active_max, self._initial)

    def reset(self) -> None:
        self._gr = np.full_like(self._gr, self._initial)
        self._gp = np.full_like(self._gp, self._initial)
        self._cover = np.full_like(self._cover, self._initial)
        self._direct = np.full_like(self._direct, self._initial)


class _GenericGammas:
    """Fallback for custom policies: gather γ per name, feed observe()."""

    def __init__(self, policy: StepSizePolicy, structure: TaskSetStructure) -> None:
        self._policy = policy
        self._structure = structure

    def gammas(self) -> GammaPair:
        s = self._structure
        gr = np.array([self._policy.resource_gamma(r)
                       for r in s.resource_names])
        gp = np.array([self._policy.path_gamma(k) for k in s.path_keys])
        return gr, gp

    def observe(self, cong_r: np.ndarray, cong_p: np.ndarray,
                cong_r_names: Tuple[str, ...],
                cong_p_keys: Tuple[PathKey, ...]) -> None:
        self._policy.observe(cong_r_names, cong_p_keys)

    def reset(self) -> None:
        # The optimizer already resets the policy object itself.
        pass


#: The union of γ supplier implementations.
GammaSupplier = Union["_FixedGammas", "_AdaptiveGammas", "_GenericGammas"]


def _make_gammas(
    policy: StepSizePolicy, structure: TaskSetStructure,
) -> GammaSupplier:
    # Exact types only: subclasses may override behaviour, so they take the
    # generic (public-interface) route.
    if type(policy) is FixedStepSize:
        return _FixedGammas(
            policy.resource_gamma(structure.resource_names[0]),
            policy.path_gamma(structure.path_keys[0]),
        )
    if type(policy) is AdaptiveStepSize:
        return _AdaptiveGammas(
            policy.initial_gamma, policy.growth, policy.max_gamma, structure
        )
    return _GenericGammas(policy, structure)


def gamma_spec(policy: StepSizePolicy) -> GammaSpec:
    """A picklable spec of ``policy`` for taskset-free reconstruction.

    Only the exact :class:`FixedStepSize` and :class:`AdaptiveStepSize`
    types fold to parameter tuples; custom policies keep per-name state the
    sharded engine cannot partition, so they raise.
    """
    if type(policy) is FixedStepSize:
        probe = PathKey("", 0)
        return ("fixed", policy.resource_gamma(""), policy.path_gamma(probe))
    if type(policy) is AdaptiveStepSize:
        return ("adaptive", policy.initial_gamma, policy.growth,
                policy.max_gamma)
    raise OptimizationError(
        f"shards > 1 supports only FixedStepSize/AdaptiveStepSize step "
        f"policies, got {type(policy).__name__}"
    )


def make_gamma_supplier(spec: GammaSpec,
                        structure: TaskSetStructure) -> GammaSupplier:
    """Rebuild the γ supplier described by :func:`gamma_spec` over
    ``structure`` (used by shard workers, which have no policy object)."""
    if spec[0] == "fixed":
        return _FixedGammas(float(spec[1]), float(spec[2]))
    if spec[0] == "adaptive":
        return _AdaptiveGammas(
            float(spec[1]), float(spec[2]), float(spec[3]), structure
        )
    raise OptimizationError(f"unknown gamma spec {spec!r}")


class VectorizedEngine:
    """Array-state LLA iteration over a compiled task set.

    The engine owns the dual state (``μ`` per resource, ``λ`` per path) and
    the primal iterate (latency per subtask) as float64 arrays; the
    optimizer facade keeps its usual dict views from the materialized
    :class:`EngineStep`.  Model mutations (error correction,
    ``set_availability``) require :meth:`refresh_model`, same contract as
    the scalar allocators' ``refresh_bounds``.
    """

    def __init__(self, taskset: TaskSet, config: "LLAConfig",
                 policy: StepSizePolicy,
                 telemetry: Optional[Telemetry] = None,
                 structure: Optional[TaskSetStructure] = None) -> None:
        if structure is not None:
            # A precompiled structure (e.g. from the service's churn
            # cache) must describe this very task set at this clamp
            # factor; the cache guarantees it via fingerprint equality.
            if structure.taskset is not taskset:
                raise OptimizationError(
                    "precompiled structure is bound to a different task set"
                )
            if structure.max_latency_factor != float(config.max_latency_factor):
                raise OptimizationError(
                    "precompiled structure was built at "
                    f"max_latency_factor={structure.max_latency_factor!r}, "
                    f"config wants {config.max_latency_factor!r}"
                )
            self.structure = structure
        else:
            self.structure = compile_structure(
                taskset, max_latency_factor=config.max_latency_factor
            )
        self.config = config
        self._gammas = _make_gammas(policy, self.structure)
        self._telemetry = telemetry
        self._phases: Optional[PhaseTimers] = None
        s = self.structure
        self._mu = np.full(s.n_resources, float(config.initial_resource_price))
        self._lam = np.full(s.n_paths, float(config.initial_path_price))
        self._lat = self._allocate()

    @classmethod
    def from_structure(cls, structure: TaskSetStructure, config: "LLAConfig",
                       gammas: GammaSupplier,
                       telemetry: Optional[Telemetry] = None,
                       ) -> "VectorizedEngine":
        """An engine over ``structure`` alone — no bound task set.

        The sharded engine and its worker processes drive shard
        sub-structures (often deserialized, ``structure.taskset is None``)
        that never see the model objects; they supply a prebuilt γ
        supplier instead of a policy.
        """
        engine = cls.__new__(cls)
        engine.structure = structure
        engine.config = config
        engine._gammas = gammas
        engine._telemetry = telemetry
        engine._phases = None
        engine._mu = np.full(
            structure.n_resources, float(config.initial_resource_price)
        )
        engine._lam = np.full(
            structure.n_paths, float(config.initial_path_price)
        )
        engine._lat = engine._allocate()
        return engine

    def state_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The live ``(latencies, μ, λ)`` arrays (not copies)."""
        return self._lat, self._mu, self._lam

    def _phase_timers(self) -> Optional[PhaseTimers]:
        """Phase timers while metrics are collected; ``None`` when off."""
        if self._telemetry is None or not self._telemetry.registry.enabled:
            return None
        if self._phases is None:
            self._phases = PhaseTimers(self._telemetry)
        return self._phases

    # -- allocation (Eq. 7) -----------------------------------------------------

    def _allocate(self) -> np.ndarray:
        """Closed-form stationarity solve + clamp at the current duals."""
        s = self.structure
        lam_sum = np.bincount(
            s.sub_ids_flat, weights=self._lam[s.sub_path_flat],
            minlength=s.n_subtasks,
        )
        pull = s.pull_base + lam_sum
        price = self._mu[s.sub_resource]
        free = price <= 0.0
        slack = pull <= _PULL_FLOOR
        with np.errstate(all="ignore"):
            arg = price * s.alpha * s.cost / pull
            if s.hyper_mask.all():
                raw = np.sqrt(arg)
            else:
                raw = np.empty_like(arg)
                np.sqrt(arg, out=raw, where=s.hyper_mask)
                pw = ~s.hyper_mask
                raw[pw] = arg[pw] ** s.inv_exp[pw]
        lat = s.err + raw
        # Same precedence as stationary_latency: a free resource wins over
        # a zero pull, and both are applied before the correction offset is
        # even considered (the scalar returns early).
        lat = np.where(slack, np.inf, lat)
        lat = np.where(free, 0.0, lat)
        return np.clip(lat, s.lo, s.hi)

    # -- load model (Eq. 3 LHS) -------------------------------------------------

    def _loads(self, lat: np.ndarray) -> np.ndarray:
        """Per-resource share sums at the given latencies."""
        return compute_loads(self.structure, lat)

    # -- one iteration ----------------------------------------------------------

    def step_arrays(self) -> StepArrays:
        """One LLA iteration in array form; mirrors ``_scalar_iteration``
        phase by phase.  :meth:`step` materializes the dict facade on top;
        batched callers (:meth:`iterate`, the sharded engine) stay here."""
        s = self.structure
        tol = self.config.congestion_tol
        gr, gp = self._gammas.gammas()
        phases = self._phase_timers()
        mark = time.perf_counter() if phases is not None else 0.0

        # (1) Path prices from the *previous* latencies (Eq. 9), then the
        # batched stationarity solve at old μ / new λ (Eq. 7).
        path_lat = np.bincount(
            s.path_ids_flat, weights=self._lat[s.path_sub_flat],
            minlength=s.n_paths,
        )
        self._lam = np.maximum(
            0.0, self._lam - gp * (1.0 - path_lat / s.path_crit)
        )
        if phases is not None:
            mark = phases.lap("path_update", mark)
        lat = self._allocate()
        self._lat = lat
        if phases is not None:
            mark = phases.lap("allocate", mark)

        # (2) Resource prices from the new latencies (Eq. 8).
        loads = self._loads(lat)
        self._mu = np.maximum(0.0, self._mu - gr * (s.availability - loads))
        if phases is not None:
            mark = phases.lap("price_update", mark)

        # (3) Congestion classification + step-size feedback.  Only a
        # generic (custom) policy consumes the *name* tuples; the fixed and
        # adaptive suppliers work on the masks, so batched iteration skips
        # materializing names.
        cong_r = loads > s.availability + tol
        path_lat_new = np.bincount(
            s.path_ids_flat, weights=lat[s.path_sub_flat],
            minlength=s.n_paths,
        )
        cong_p = path_lat_new > s.path_crit + tol
        if isinstance(self._gammas, _GenericGammas):
            cong_r_names = tuple(
                s.resource_names[i] for i in np.flatnonzero(cong_r)
            )
            cong_p_keys = tuple(
                s.path_keys[i] for i in np.flatnonzero(cong_p)
            )
        else:
            cong_r_names = ()
            cong_p_keys = ()
        self._gammas.observe(cong_r, cong_p, cong_r_names, cong_p_keys)
        if phases is not None:
            phases.lap("classify", mark)

        # Utility (Eq. 2): per-task aggregated latency through the task's
        # utility; summed in task order by the consumer (see step()).
        agg = np.bincount(
            s.sub_task_ids, weights=s.weights * lat,
            minlength=len(s.task_names),
        )
        per_task = np.where(
            s.ut_kind == 0,
            s.ut_kc - s.ut_slope * agg,
            np.where(agg <= s.ut_crit, s.ut_umax, 0.0),
        )

        # Critical-path latencies are observational (they feed records, not
        # the iteration), computed as the max over the task's path sums.
        crit = np.maximum.reduceat(path_lat_new, s.task_path_starts)

        return StepArrays(
            lat=lat, mu=self._mu, lam=self._lam, loads=loads,
            path_lat=path_lat_new, cong_r=cong_r, cong_p=cong_p,
            per_task=per_task, crit=crit,
        )

    def iterate(self, n: int) -> Optional[StepArrays]:
        """Run ``n`` iterations without materializing dicts.

        Returns the last iteration's :class:`StepArrays` (``None`` when
        ``n == 0``).  The trajectory is identical to ``n`` calls of
        :meth:`step` — the dict facade is pure observation."""
        out: Optional[StepArrays] = None
        for _ in range(n):
            out = self.step_arrays()
        return out

    def step(self) -> EngineStep:
        """One LLA iteration, materialized for the optimizer facade."""
        s = self.structure
        out = self.step_arrays()
        cong_r_names = tuple(
            s.resource_names[i] for i in np.flatnonzero(out.cong_r)
        )
        cong_p_keys = tuple(
            s.path_keys[i] for i in np.flatnonzero(out.cong_p)
        )
        # Summed in task order like TaskSet.total_utility (sequential
        # Python float adds, not a pairwise numpy reduction).
        utility = float(sum(out.per_task.tolist()))
        return EngineStep(
            utility=utility,
            latencies=dict(zip(s.subtask_names, out.lat.tolist())),
            resource_prices=dict(zip(s.resource_names, out.mu.tolist())),
            path_prices=dict(zip(s.path_keys, out.lam.tolist())),
            resource_loads=dict(zip(s.resource_names, out.loads.tolist())),
            congested_resources=cong_r_names,
            congested_paths=cong_p_keys,
            critical_paths=dict(zip(s.task_names, out.crit.tolist())),
        )

    # -- facade support ---------------------------------------------------------

    def reallocate(self, resource_prices: Mapping[str, float]) -> Dict[str, float]:
        """Adopt ``resource_prices`` as μ and redo the primal solve.

        Serves both primal initialization and warm starts: the optimizer
        mutates its price dict, then asks for fresh latencies; the engine
        must keep iterating from the same μ afterwards.
        """
        s = self.structure
        self._mu = np.array(
            [resource_prices.get(r, 0.0) for r in s.resource_names]
        )
        self._lat = self._allocate()
        return dict(zip(s.subtask_names, self._lat.tolist()))

    def path_prices_dict(self) -> Dict[PathKey, float]:
        return dict(zip(self.structure.path_keys, self._lam.tolist()))

    def reset_step_sizes(self) -> None:
        """Snap every γ escalation back to the initial step size."""
        self._gammas.reset()

    def reset_path_prices(self) -> None:
        """λ back to the configured initial value (μ and γ untouched).

        Used by :meth:`LLAOptimizer.adopt_prices`: adopting external
        resource prices must not carry a previous run's path prices into
        the next primal solve."""
        self._lam.fill(float(self.config.initial_path_price))

    def reset(self) -> None:
        """Back to initial duals and step sizes (primal follows via
        the optimizer's ``reallocate`` call)."""
        self._mu.fill(float(self.config.initial_resource_price))
        self._lam.fill(float(self.config.initial_path_price))
        self._gammas.reset()
        self._lat = self._allocate()

    def refresh_model(self) -> None:
        """Re-read mutable model state (share functions, availabilities)."""
        self.structure.refresh_model()


# -- structure-level observation ------------------------------------------------
#
# Everything below reads a compiled TaskSetStructure plus a latency
# assignment and computes the global quantities the scalar TaskSet API
# derives by traversing the object graph (resource_loads, total_utility,
# critical_path, is_feasible).  Observers that already hold a structure —
# the distributed runtime's omniscient snapshot, the service's query path —
# use these instead of re-walking tasks per round (REP016).


def compute_loads(structure: TaskSetStructure, lat: np.ndarray) -> np.ndarray:
    """Per-resource share sums at the given latencies (Eq. 3 LHS).

    Bitwise-equal to summing ``TaskSet.resource_load`` per resource when
    the task set is declared in canonical (name-sorted) order: the
    ``bincount`` accumulates shares in subtask order, which is exactly the
    scalar loop's visit order.
    """
    s = structure
    model_lat = lat - s.err
    if np.any(s.err != 0.0) and np.any(model_lat <= 0.0):
        idx = int(np.argmax(model_lat <= 0.0))
        raise ShareError(
            f"corrected latency {lat[idx]!r} of subtask "
            f"{s.subtask_names[idx]!r} with error {s.err[idx]!r} maps "
            "to a non-positive model latency"
        )
    if s.hyper_mask.all():
        shares = s.cost / model_lat
    else:
        shares = np.where(
            s.hyper_mask,
            s.cost / model_lat,
            s.cost / model_lat ** s.alpha,
        )
    return np.bincount(
        s.sub_resource, weights=shares, minlength=s.n_resources
    )


@dataclass
class ObservedAssignment:
    """Global facts about one latency assignment, in array form."""

    lat: np.ndarray          #: per-subtask latencies, shape (S,)
    loads: np.ndarray        #: per-resource loads, shape (R,)
    path_lat: np.ndarray     #: per-path latency sums, shape (P,)
    cong_r: np.ndarray       #: congested-resource mask, shape (R,) bool
    cong_p: np.ndarray       #: congested-path mask, shape (P,) bool
    per_task: np.ndarray     #: per-task utilities, shape (T,)
    crit: np.ndarray         #: per-task critical-path latencies, shape (T,)
    utility: float           #: Σ_i U_i, summed in task order

    def feasible(self) -> bool:
        """Whether the assignment satisfies Eqs. 3–4 at the mask tol."""
        return not (bool(self.cong_r.any()) or bool(self.cong_p.any()))


def observe_assignment(structure: TaskSetStructure,
                       latencies: Mapping[str, float],
                       tol: float = 1e-9) -> ObservedAssignment:
    """Measure a latency assignment against the compiled model.

    ``tol`` is the slack used for the congestion/feasibility masks (the
    distributed observer uses 1e-9 per round and 1e-2 for the final
    feasibility verdict, like ``TaskSet.is_feasible``).
    """
    s = structure
    lat = np.array([latencies[name] for name in s.subtask_names])
    loads = compute_loads(s, lat)
    cong_r = loads > s.availability + tol
    path_lat = np.bincount(
        s.path_ids_flat, weights=lat[s.path_sub_flat], minlength=s.n_paths,
    )
    cong_p = path_lat > s.path_crit + tol
    agg = np.bincount(
        s.sub_task_ids, weights=s.weights * lat,
        minlength=len(s.task_names),
    )
    per_task = np.where(
        s.ut_kind == 0,
        s.ut_kc - s.ut_slope * agg,
        np.where(agg <= s.ut_crit, s.ut_umax, 0.0),
    )
    crit = np.maximum.reduceat(path_lat, s.task_path_starts)
    return ObservedAssignment(
        lat=lat, loads=loads, path_lat=path_lat, cong_r=cong_r,
        cong_p=cong_p, per_task=per_task, crit=crit,
        utility=float(sum(per_task.tolist())),
    )
