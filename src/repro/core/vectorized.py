"""Batched numpy kernel for the LLA iteration.

``VectorizedEngine`` executes the exact iteration of
:meth:`LLAOptimizer._scalar_iteration` — Eq. 9 path-price step from the old
latencies, Eq. 7 closed-form allocation, Eq. 8 resource-price step,
congestion classification, step-size feedback, utility — as whole-array
operations over the structure precompiled by
:mod:`repro.core.structure`.

The two backends are *trajectory-identical*, not just approximately equal:
every reduction is ordered like its scalar counterpart (see the structure
module's layout notes), arithmetic uses the same expression shapes, and the
free-resource / zero-pull special cases of
:func:`~repro.core.allocation.stationary_latency` are reproduced as masks.
That matters because the adaptive step-size heuristic branches on strict
comparisons (``load > B_r + tol``): a one-ulp difference in a load flips a
doubling decision and the runs diverge visibly.  Parity tests assert
bitwise-equal traces over full figure runs.

Step-size handling: :class:`FixedStepSize` folds to two scalars;
:class:`AdaptiveStepSize` is re-implemented as array updates with
engine-owned γ state (the policy object is bypassed — its dicts stay at
their initial values); any other policy is driven through its public
per-name interface, which preserves semantics at scalar-ish speed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import OptimizationError, ShareError
from repro.core.allocation import _PULL_FLOOR
from repro.core.phases import PhaseTimers
from repro.core.state import PathKey
from repro.core.stepsize import AdaptiveStepSize, FixedStepSize, StepSizePolicy
from repro.core.structure import TaskSetStructure, compile_structure
from repro.model.task import TaskSet
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.optimizer import LLAConfig

__all__ = ["VectorizedEngine", "EngineStep"]

#: γ suppliers return either two scalars (fixed policy) or two arrays.
GammaPair = Tuple[Union[float, np.ndarray], Union[float, np.ndarray]]


@dataclass
class EngineStep:
    """One iteration's outputs, materialized for the optimizer facade."""

    utility: float
    latencies: Dict[str, float]
    resource_prices: Dict[str, float]
    path_prices: Dict[PathKey, float]
    resource_loads: Dict[str, float]
    congested_resources: Tuple[str, ...]
    congested_paths: Tuple[PathKey, ...]
    critical_paths: Dict[str, float]


class _FixedGammas:
    """γ supplier for an exact :class:`FixedStepSize` (two constants)."""

    def __init__(self, policy: FixedStepSize, structure: TaskSetStructure) -> None:
        self._gr = policy.resource_gamma(structure.resource_names[0])
        self._gp = policy.path_gamma(structure.path_keys[0])

    def gammas(self) -> GammaPair:
        return self._gr, self._gp

    def observe(self, cong_r: np.ndarray, cong_p: np.ndarray,
                cong_r_names: Tuple[str, ...],
                cong_p_keys: Tuple[PathKey, ...]) -> None:
        pass

    def reset(self) -> None:
        pass


class _AdaptiveGammas:
    """Array form of :meth:`AdaptiveStepSize.observe`.

    Owns the γ vectors itself; the wrapped policy object is not consulted
    per iteration (its dict state stays at the initial γ).
    """

    def __init__(self, policy: AdaptiveStepSize, structure: TaskSetStructure) -> None:
        self._initial = policy.initial_gamma
        self._growth = policy.growth
        self._max = policy.max_gamma
        self._inc = structure.path_res_inc
        self._gr = np.full(structure.n_resources, self._initial)
        self._gp = np.full(structure.n_paths, self._initial)
        self._cover = np.full(structure.n_paths, self._initial)
        self._direct = np.full(structure.n_paths, self._initial)

    def gammas(self) -> GammaPair:
        return self._gr, self._gp

    def observe(self, cong_r: np.ndarray, cong_p: np.ndarray,
                cong_r_names: Tuple[str, ...],
                cong_p_keys: Tuple[PathKey, ...]) -> None:
        self._gr = np.where(
            cong_r, np.minimum(self._gr * self._growth, self._max),
            self._initial,
        )
        # Two independent escalation states per path (resource coverage
        # vs direct constraint violation); serve the largest active one.
        covered = (self._inc & cong_r).any(axis=1)
        self._cover = np.where(
            covered, np.minimum(self._cover * self._growth, self._max),
            self._initial,
        )
        self._direct = np.where(
            cong_p, np.minimum(self._direct * self._growth, self._max),
            self._initial,
        )
        active_max = np.maximum(
            np.where(covered, self._cover, -np.inf),
            np.where(cong_p, self._direct, -np.inf),
        )
        self._gp = np.where(covered | cong_p, active_max, self._initial)

    def reset(self) -> None:
        self._gr = np.full_like(self._gr, self._initial)
        self._gp = np.full_like(self._gp, self._initial)
        self._cover = np.full_like(self._cover, self._initial)
        self._direct = np.full_like(self._direct, self._initial)


class _GenericGammas:
    """Fallback for custom policies: gather γ per name, feed observe()."""

    def __init__(self, policy: StepSizePolicy, structure: TaskSetStructure) -> None:
        self._policy = policy
        self._structure = structure

    def gammas(self) -> GammaPair:
        s = self._structure
        gr = np.array([self._policy.resource_gamma(r)
                       for r in s.resource_names])
        gp = np.array([self._policy.path_gamma(k) for k in s.path_keys])
        return gr, gp

    def observe(self, cong_r: np.ndarray, cong_p: np.ndarray,
                cong_r_names: Tuple[str, ...],
                cong_p_keys: Tuple[PathKey, ...]) -> None:
        self._policy.observe(cong_r_names, cong_p_keys)

    def reset(self) -> None:
        # The optimizer already resets the policy object itself.
        pass


def _make_gammas(
    policy: StepSizePolicy, structure: TaskSetStructure,
) -> Union["_FixedGammas", "_AdaptiveGammas", "_GenericGammas"]:
    # Exact types only: subclasses may override behaviour, so they take the
    # generic (public-interface) route.
    if type(policy) is FixedStepSize:
        return _FixedGammas(policy, structure)
    if type(policy) is AdaptiveStepSize:
        return _AdaptiveGammas(policy, structure)
    return _GenericGammas(policy, structure)


class VectorizedEngine:
    """Array-state LLA iteration over a compiled task set.

    The engine owns the dual state (``μ`` per resource, ``λ`` per path) and
    the primal iterate (latency per subtask) as float64 arrays; the
    optimizer facade keeps its usual dict views from the materialized
    :class:`EngineStep`.  Model mutations (error correction,
    ``set_availability``) require :meth:`refresh_model`, same contract as
    the scalar allocators' ``refresh_bounds``.
    """

    def __init__(self, taskset: TaskSet, config: "LLAConfig",
                 policy: StepSizePolicy,
                 telemetry: Optional[Telemetry] = None,
                 structure: Optional[TaskSetStructure] = None) -> None:
        if structure is not None:
            # A precompiled structure (e.g. from the service's churn
            # cache) must describe this very task set at this clamp
            # factor; the cache guarantees it via fingerprint equality.
            if structure.taskset is not taskset:
                raise OptimizationError(
                    "precompiled structure is bound to a different task set"
                )
            if structure.max_latency_factor != float(config.max_latency_factor):
                raise OptimizationError(
                    "precompiled structure was built at "
                    f"max_latency_factor={structure.max_latency_factor!r}, "
                    f"config wants {config.max_latency_factor!r}"
                )
            self.structure = structure
        else:
            self.structure = compile_structure(
                taskset, max_latency_factor=config.max_latency_factor
            )
        self.config = config
        self._gammas = _make_gammas(policy, self.structure)
        self._telemetry = telemetry
        self._phases: Optional[PhaseTimers] = None
        s = self.structure
        self._mu = np.full(s.n_resources, float(config.initial_resource_price))
        self._lam = np.full(s.n_paths, float(config.initial_path_price))
        self._lat = self._allocate()

    def _phase_timers(self) -> Optional[PhaseTimers]:
        """Phase timers while metrics are collected; ``None`` when off."""
        if self._telemetry is None or not self._telemetry.registry.enabled:
            return None
        if self._phases is None:
            self._phases = PhaseTimers(self._telemetry)
        return self._phases

    # -- allocation (Eq. 7) -----------------------------------------------------

    def _allocate(self) -> np.ndarray:
        """Closed-form stationarity solve + clamp at the current duals."""
        s = self.structure
        lam_sum = np.bincount(
            s.sub_ids_flat, weights=self._lam[s.sub_path_flat],
            minlength=s.n_subtasks,
        )
        pull = s.pull_base + lam_sum
        price = self._mu[s.sub_resource]
        free = price <= 0.0
        slack = pull <= _PULL_FLOOR
        with np.errstate(all="ignore"):
            arg = price * s.alpha * s.cost / pull
            if s.hyper_mask.all():
                raw = np.sqrt(arg)
            else:
                raw = np.empty_like(arg)
                np.sqrt(arg, out=raw, where=s.hyper_mask)
                pw = ~s.hyper_mask
                raw[pw] = arg[pw] ** s.inv_exp[pw]
        lat = s.err + raw
        # Same precedence as stationary_latency: a free resource wins over
        # a zero pull, and both are applied before the correction offset is
        # even considered (the scalar returns early).
        lat = np.where(slack, np.inf, lat)
        lat = np.where(free, 0.0, lat)
        return np.clip(lat, s.lo, s.hi)

    # -- load model (Eq. 3 LHS) -------------------------------------------------

    def _loads(self, lat: np.ndarray) -> np.ndarray:
        """Per-resource share sums at the given latencies."""
        s = self.structure
        model_lat = lat - s.err
        if np.any(s.err != 0.0) and np.any(model_lat <= 0.0):
            idx = int(np.argmax(model_lat <= 0.0))
            raise ShareError(
                f"corrected latency {lat[idx]!r} of subtask "
                f"{s.subtask_names[idx]!r} with error {s.err[idx]!r} maps "
                "to a non-positive model latency"
            )
        if s.hyper_mask.all():
            shares = s.cost / model_lat
        else:
            shares = np.where(
                s.hyper_mask,
                s.cost / model_lat,
                s.cost / model_lat ** s.alpha,
            )
        return np.bincount(
            s.sub_resource, weights=shares, minlength=s.n_resources
        )

    # -- one iteration ----------------------------------------------------------

    def step(self) -> EngineStep:
        """One LLA iteration; mirrors ``_scalar_iteration`` phase by phase."""
        s = self.structure
        tol = self.config.congestion_tol
        gr, gp = self._gammas.gammas()
        phases = self._phase_timers()
        mark = time.perf_counter() if phases is not None else 0.0

        # (1) Path prices from the *previous* latencies (Eq. 9), then the
        # batched stationarity solve at old μ / new λ (Eq. 7).
        path_lat = np.bincount(
            s.path_ids_flat, weights=self._lat[s.path_sub_flat],
            minlength=s.n_paths,
        )
        self._lam = np.maximum(
            0.0, self._lam - gp * (1.0 - path_lat / s.path_crit)
        )
        if phases is not None:
            mark = phases.lap("path_update", mark)
        lat = self._allocate()
        self._lat = lat
        if phases is not None:
            mark = phases.lap("allocate", mark)

        # (2) Resource prices from the new latencies (Eq. 8).
        loads = self._loads(lat)
        self._mu = np.maximum(0.0, self._mu - gr * (s.availability - loads))
        if phases is not None:
            mark = phases.lap("price_update", mark)

        # (3) Congestion classification + step-size feedback.
        cong_r = loads > s.availability + tol
        path_lat_new = np.bincount(
            s.path_ids_flat, weights=lat[s.path_sub_flat],
            minlength=s.n_paths,
        )
        cong_p = path_lat_new > s.path_crit + tol
        cong_r_names = tuple(
            s.resource_names[i] for i in np.flatnonzero(cong_r)
        )
        cong_p_keys = tuple(s.path_keys[i] for i in np.flatnonzero(cong_p))
        self._gammas.observe(cong_r, cong_p, cong_r_names, cong_p_keys)
        if phases is not None:
            phases.lap("classify", mark)

        # Utility (Eq. 2): per-task aggregated latency through the task's
        # utility, summed in task order like TaskSet.total_utility.
        agg = np.bincount(
            s.sub_task_ids, weights=s.weights * lat,
            minlength=len(s.task_names),
        )
        per_task = np.where(
            s.ut_kind == 0,
            s.ut_kc - s.ut_slope * agg,
            np.where(agg <= s.ut_crit, s.ut_umax, 0.0),
        )
        utility = float(sum(per_task.tolist()))

        # Critical-path latencies are observational (they feed records, not
        # the iteration), computed as the max over the task's path sums.
        crit = np.maximum.reduceat(path_lat_new, s.task_path_starts)

        return EngineStep(
            utility=utility,
            latencies=dict(zip(s.subtask_names, lat.tolist())),
            resource_prices=dict(zip(s.resource_names, self._mu.tolist())),
            path_prices=dict(zip(s.path_keys, self._lam.tolist())),
            resource_loads=dict(zip(s.resource_names, loads.tolist())),
            congested_resources=cong_r_names,
            congested_paths=cong_p_keys,
            critical_paths=dict(zip(s.task_names, crit.tolist())),
        )

    # -- facade support ---------------------------------------------------------

    def reallocate(self, resource_prices: Mapping[str, float]) -> Dict[str, float]:
        """Adopt ``resource_prices`` as μ and redo the primal solve.

        Serves both primal initialization and warm starts: the optimizer
        mutates its price dict, then asks for fresh latencies; the engine
        must keep iterating from the same μ afterwards.
        """
        s = self.structure
        self._mu = np.array(
            [resource_prices.get(r, 0.0) for r in s.resource_names]
        )
        self._lat = self._allocate()
        return dict(zip(s.subtask_names, self._lat.tolist()))

    def path_prices_dict(self) -> Dict[PathKey, float]:
        return dict(zip(self.structure.path_keys, self._lam.tolist()))

    def reset_step_sizes(self) -> None:
        """Snap every γ escalation back to the initial step size."""
        self._gammas.reset()

    def reset_path_prices(self) -> None:
        """λ back to the configured initial value (μ and γ untouched).

        Used by :meth:`LLAOptimizer.adopt_prices`: adopting external
        resource prices must not carry a previous run's path prices into
        the next primal solve."""
        self._lam.fill(float(self.config.initial_path_price))

    def reset(self) -> None:
        """Back to initial duals and step sizes (primal follows via
        the optimizer's ``reallocate`` call)."""
        self._mu.fill(float(self.config.initial_resource_price))
        self._lam.fill(float(self.config.initial_path_price))
        self._gammas.reset()
        self._lat = self._allocate()

    def refresh_model(self) -> None:
        """Re-read mutable model state (share functions, availabilities)."""
        self.structure.refresh_model()
