"""The LLA optimizer: iterative latency allocation + price computation.

This is the in-process ("centralized execution of the distributed
algorithm") form of LLA used for the simulation experiments of Section 5.
Each iteration performs exactly what the paper's two algorithm boxes
describe, in order:

1. every task controller receives the current resource prices, updates its
   path prices (Eq. 9), and computes new subtask latencies from the
   Lagrangian stationarity condition (Eq. 7);
2. every resource receives the new latencies of the subtasks it hosts and
   updates its price (Eq. 8);
3. the step-size policy observes which resources/paths are congested (the
   adaptive heuristic of Section 5.2).

The message-passing form with explicit controller/resource agents lives in
:mod:`repro.distributed`; it produces identical iterates under a lossless
synchronous bus (asserted by integration tests).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, FrozenSet, Mapping, Optional, Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from typing import Union

    from repro.core.sharding import ShardedEngine
    from repro.core.structure import TaskSetStructure
    from repro.core.vectorized import VectorizedEngine

    Engine = Union["VectorizedEngine", "ShardedEngine"]

from repro.errors import OptimizationError
from repro.core.allocation import LatencyAllocator
from repro.core.convergence import ConvergenceDetector
from repro.core.prices import PathPriceUpdater, ResourcePriceUpdater
from repro.core.state import IterationRecord, OptimizationResult, PathKey
from repro.core.phases import PhaseTimers
from repro.core.stepsize import AdaptiveStepSize, FixedStepSize, StepSizePolicy
from repro.model.task import TaskSet
from repro.model.utility import check_concavity
from repro.telemetry import NULL_TELEMETRY, Telemetry, encode_record

__all__ = ["LLAConfig", "LLAOptimizer"]

logger = logging.getLogger(__name__)


@dataclass
class LLAConfig:
    """Tunables of an LLA run.

    Defaults reproduce the paper's best configuration: adaptive step sizes
    starting at γ = 1, initial resource price 1, initial path price 0.

    Attributes
    ----------
    max_iterations:
        Iteration budget (Section 5 runs use 100–1500).
    step_policy:
        A :class:`~repro.core.stepsize.StepSizePolicy`, or ``None`` to build
        the paper's adaptive policy with ``initial_gamma``.
    initial_gamma:
        Starting γ for the default adaptive policy.
    initial_resource_price / initial_path_price:
        Dual-variable initialization.
    utility_tol / convergence_window / feasibility_tol / require_feasible /
    utility_floor:
        Convergence detector settings (see
        :class:`~repro.core.convergence.ConvergenceDetector`).
    congestion_tol:
        Slack below which a constraint still counts as satisfied when
        classifying congestion for the adaptive heuristic.
    record_history:
        Keep an :class:`~repro.core.state.IterationRecord` per iteration.
    strict:
        Verify utility concavity on ``(0, C_i)`` before running.
    max_latency_factor:
        Upper latency clamp as a multiple of the critical time.
    stop_on_convergence:
        When ``False``, always run the full iteration budget (used by the
        figure drivers, which want fixed-length traces).
    warm_start:
        Initialize each resource price at its locally-estimable
        equilibrium value (see :mod:`repro.core.warmstart`) instead of
        ``initial_resource_price``.  Exact in the overprovisioned regime;
        a large head start elsewhere.
    backend:
        ``"scalar"`` (the reference per-subtask/per-path loops) or
        ``"vectorized"`` (the batched numpy kernel of
        :mod:`repro.core.vectorized`).  Both produce the same iterates and
        the same :class:`~repro.core.state.IterationRecord` stream; the
        vectorized backend requires the paper's closed-form model family
        (power-law shares, linear or inelastic utilities).
    shards:
        Maximum number of shards for the vectorized backend (see
        :mod:`repro.core.sharding`).  The compiled structure is partitioned
        by resource-connectivity components — never splitting one — so a
        sharded run is bitwise-identical to an unsharded one; the effective
        count is capped by the number of components.  ``1`` (the default)
        runs the plain unsharded kernel.  Requires ``backend="vectorized"``
        and a ``FixedStepSize``/``AdaptiveStepSize`` step policy.
    shard_mode:
        ``"serial"`` runs every shard engine in-process (deterministic,
        no IPC; still wins on separable workloads because per-shard work
        is block-diagonal), ``"processes"`` runs one worker process per
        shard with shared-memory result arrays (multi-core speedup for
        batched iteration).
    """

    max_iterations: int = 500
    step_policy: Optional[StepSizePolicy] = None
    initial_gamma: float = 1.0
    initial_resource_price: float = 1.0
    initial_path_price: float = 0.0
    utility_tol: float = 1e-4
    convergence_window: int = 10
    feasibility_tol: float = 1e-2
    require_feasible: bool = True
    utility_floor: float = 1e-6
    congestion_tol: float = 1e-9
    record_history: bool = True
    strict: bool = False
    max_latency_factor: float = 1.0
    stop_on_convergence: bool = True
    warm_start: bool = False
    backend: str = "scalar"
    shards: int = 1
    shard_mode: str = "serial"

    def __post_init__(self) -> None:
        """Reject inconsistent knobs at construction (REP008): a bad
        budget or tolerance caught here would otherwise surface hundreds
        of iterations later as a spurious non-convergence."""
        if self.max_iterations < 1:
            raise OptimizationError(
                f"max_iterations must be >= 1, got {self.max_iterations!r}"
            )
        if self.backend not in ("scalar", "vectorized"):
            raise OptimizationError(
                f"unknown backend {self.backend!r}; "
                "expected 'scalar' or 'vectorized'"
            )
        if self.initial_gamma <= 0.0:
            raise OptimizationError(
                f"initial_gamma must be positive, got {self.initial_gamma!r}"
            )
        if self.initial_resource_price <= 0.0:
            # A zero dual price makes the first latency assignment
            # degenerate (shares divide by the price).
            raise OptimizationError(
                f"initial_resource_price must be positive, "
                f"got {self.initial_resource_price!r}"
            )
        if self.initial_path_price < 0.0:
            raise OptimizationError(
                f"initial_path_price must be >= 0, "
                f"got {self.initial_path_price!r}"
            )
        if self.utility_tol <= 0.0:
            raise OptimizationError(
                f"utility_tol must be positive, got {self.utility_tol!r}"
            )
        if self.convergence_window < 1:
            raise OptimizationError(
                f"convergence_window must be >= 1, "
                f"got {self.convergence_window!r}"
            )
        if self.feasibility_tol < 0.0:
            raise OptimizationError(
                f"feasibility_tol must be >= 0, got {self.feasibility_tol!r}"
            )
        if self.utility_floor <= 0.0:
            raise OptimizationError(
                f"utility_floor must be positive, got {self.utility_floor!r}"
            )
        if self.congestion_tol < 0.0:
            raise OptimizationError(
                f"congestion_tol must be >= 0, got {self.congestion_tol!r}"
            )
        if self.max_latency_factor < 1.0:
            raise OptimizationError(
                f"max_latency_factor must be >= 1, "
                f"got {self.max_latency_factor!r}"
            )
        if self.shards < 1:
            raise OptimizationError(
                f"shards must be >= 1, got {self.shards!r}"
            )
        if self.shards > 1 and self.backend != "vectorized":
            raise OptimizationError(
                "shards > 1 requires backend='vectorized', "
                f"got backend={self.backend!r}"
            )
        if self.shard_mode not in ("serial", "processes"):
            raise OptimizationError(
                f"unknown shard_mode {self.shard_mode!r}; "
                "expected 'serial' or 'processes'"
            )

    def build_step_policy(self, taskset: TaskSet) -> StepSizePolicy:
        if self.step_policy is not None:
            return self.step_policy
        return AdaptiveStepSize(taskset, initial_gamma=self.initial_gamma)

    @staticmethod
    def fixed(gamma: float, **kwargs: Any) -> "LLAConfig":
        """Convenience: a config with a fixed step size (Figure 5's γ runs)."""
        return LLAConfig(step_policy=FixedStepSize(gamma), **kwargs)


class LLAOptimizer:
    """Runs LLA on a :class:`~repro.model.task.TaskSet`.

    The optimizer owns the dual state (prices) and the last primal iterate
    (latencies).  :meth:`run` executes a batch of iterations;
    :meth:`step` executes one, so callers that interleave optimization with
    a running system (the Section 6 prototype pattern) can drive it
    manually.

    ``structure`` optionally supplies a precompiled
    :class:`~repro.core.structure.TaskSetStructure` for the vectorized
    backend (it must describe ``taskset`` at the configured
    ``max_latency_factor``); the always-on service uses this to skip
    recompilation across churn events.  Ignored by the scalar backend.
    """

    def __init__(self, taskset: TaskSet, config: Optional[LLAConfig] = None,
                 on_iteration: Optional[Callable[[IterationRecord], None]] = None,
                 telemetry: Optional[Telemetry] = None,
                 structure: Optional["TaskSetStructure"] = None) -> None:
        self.taskset = taskset
        self.config = config or LLAConfig()
        self.on_iteration = on_iteration
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._metrics: Optional[Dict[str, Any]] = None
        self._phases: Optional[PhaseTimers] = None
        self._prev_congested: Optional[
            Tuple[FrozenSet[str], FrozenSet[PathKey]]
        ] = None
        if self.config.strict:
            self._check_utilities()

        self.step_policy = self.config.build_step_policy(taskset)
        self.resource_prices = ResourcePriceUpdater(
            taskset, initial_price=self.config.initial_resource_price
        )
        self.path_prices: Dict[str, PathPriceUpdater] = {
            task.name: PathPriceUpdater(
                task, initial_price=self.config.initial_path_price
            )
            for task in taskset.tasks
        }
        self.allocators: Dict[str, LatencyAllocator] = {
            task.name: LatencyAllocator(
                taskset, task, max_latency_factor=self.config.max_latency_factor
            )
            for task in taskset.tasks
        }
        self.detector = ConvergenceDetector(
            taskset,
            utility_tol=self.config.utility_tol,
            window=self.config.convergence_window,
            feasibility_tol=self.config.feasibility_tol,
            require_feasible=self.config.require_feasible,
            utility_floor=self.config.utility_floor,
        )
        self._engine: Optional["Engine"] = None
        if self.config.backend == "vectorized":
            if self.config.shards > 1:
                from repro.core.sharding import ShardedEngine
                self._engine = ShardedEngine(taskset, self.config,
                                             self.step_policy,
                                             telemetry=self.telemetry,
                                             structure=structure)
            else:
                from repro.core.vectorized import VectorizedEngine
                self._engine = VectorizedEngine(taskset, self.config,
                                                self.step_policy,
                                                telemetry=self.telemetry,
                                                structure=structure)
        self.iteration = 0
        # Trace timestamps follow the iteration counter (the optimizer's
        # virtual clock) so identical runs write identical event streams,
        # unless the caller injected a clock of their own.
        tracer = self.telemetry.tracer
        if tracer.enabled and not tracer.clock_injected:
            tracer.set_clock(lambda: float(self.iteration))
        self.latencies: Dict[str, float] = self._initial_latencies()
        if self.config.warm_start:
            from repro.core.warmstart import apply_warm_start
            apply_warm_start(self)

    @property
    def structure(self) -> Optional["TaskSetStructure"]:
        """The compiled structure behind the vectorized backend (``None``
        on the scalar backend).  Consumers that can read allocation facts
        from the structure's arrays should prefer it over re-traversing
        the :class:`~repro.model.task.TaskSet` object graph (REP016)."""
        if self._engine is None:
            return None
        return self._engine.structure

    def _check_utilities(self) -> None:
        for task in self.taskset.tasks:
            if not task.utility.is_elastic():
                continue
            lo = 1e-6 * task.critical_time
            if not check_concavity(task.utility, lo, task.critical_time):
                raise OptimizationError(
                    f"task {task.name!r} has a non-concave utility; "
                    "LLA's convergence guarantee does not apply "
                    "(pass strict=False to run anyway)"
                )

    def _initial_latencies(self) -> Dict[str, float]:
        """Primal initialization: one allocation pass at the initial prices."""
        if self._engine is not None:
            return self._engine.reallocate(self.resource_prices.prices)
        latencies: Dict[str, float] = {}
        for task in self.taskset.tasks:
            latencies.update(
                self.allocators[task.name].allocate(
                    self.resource_prices.prices,
                    self.path_prices[task.name].prices,
                )
            )
        return latencies

    def refresh_model(self) -> None:
        """Re-read share functions after an external model change.

        Error correction swaps share functions on the task set (and
        resource availabilities may shift at run time); allocator latency
        bounds cache ``min_latency`` and must be recomputed, and the
        vectorized backend must recompile its model arrays.
        """
        for allocator in self.allocators.values():
            allocator.refresh_bounds()
        if self._engine is not None:
            self._engine.refresh_model()

    def adopt_prices(self, resource_prices: Mapping[str, float]) -> None:
        """Adopt ``resource_prices`` as the dual iterate, consistently.

        Installs the given μ map, resets every path price λ to the
        configured initial value (both backends), snaps step-size
        escalation back to the initial γ, clears the convergence window,
        and refreshes the primal iterate — afterwards the optimizer state
        is exactly that of a fresh instance constructed at these resource
        prices.  This is the single entry point for warm starts and the
        service's churn path; updating ``resource_prices.prices`` alone
        would leak stale λ and escalated γ from a previous run into the
        next solve.
        """
        unknown = sorted(set(resource_prices) - set(self.taskset.resources))
        if unknown:
            raise OptimizationError(
                f"adopt_prices got prices for unknown resources {unknown!r}"
            )
        self.resource_prices.prices.update(
            {rname: float(price) for rname, price in resource_prices.items()}
        )
        for updater in self.path_prices.values():
            updater.reset()
        self.step_policy.reset()
        self.detector.reset()
        if self._engine is not None:
            self._engine.reset_path_prices()
            self._engine.reset_step_sizes()
        self.latencies = self._initial_latencies()

    # -- iteration ---------------------------------------------------------------

    def step(self) -> IterationRecord:
        """One full LLA iteration; returns its record.

        Telemetry never influences the iterates: instrumentation only reads
        optimizer state, so a traced run is bit-identical to an untraced
        one (asserted by a regression test).  Both backends flow through
        here, so tracing, metrics and ``on_iteration`` behave identically.
        """
        instrumented = self.telemetry.enabled
        if instrumented:
            started = time.perf_counter()
            prev_prices = dict(self.resource_prices.prices)

        if self._engine is not None:
            record = self._vectorized_iteration()
        else:
            record = self._scalar_iteration()

        if instrumented:
            self._observe_iteration(
                record, prev_prices, time.perf_counter() - started
            )
        if self.on_iteration is not None:
            self.on_iteration(record)
        return record

    def _vectorized_iteration(self) -> IterationRecord:
        """One iteration through the batched numpy kernel."""
        out = self._engine.step()
        self.latencies = out.latencies
        self.resource_prices.prices = dict(out.resource_prices)
        self.detector.observe(out.utility, out.latencies)
        self.iteration += 1
        return IterationRecord(
            iteration=self.iteration,
            utility=out.utility,
            latencies=out.latencies,
            resource_prices=out.resource_prices,
            path_prices=out.path_prices,
            resource_loads=out.resource_loads,
            congested_resources=out.congested_resources,
            congested_paths=out.congested_paths,
            critical_paths=out.critical_paths,
        )

    def _phase_timers(self) -> Optional[PhaseTimers]:
        """Phase timers while metrics are collected; ``None`` when off."""
        if not self.telemetry.registry.enabled:
            return None
        if self._phases is None:
            self._phases = PhaseTimers(self.telemetry)
        return self._phases

    def _scalar_iteration(self) -> IterationRecord:
        """One iteration through the reference per-task/per-resource loops."""
        config = self.config
        phases = self._phase_timers()

        # (1) Task controllers: update path prices from the previous
        # latencies, then allocate new latencies (the paper's Latency
        # Allocation box, steps 1–4).  The per-task loop interleaves the
        # two phases, so their wall times are accumulated separately.
        path_seconds = 0.0
        allocate_seconds = 0.0
        mark = time.perf_counter() if phases is not None else 0.0
        new_latencies: Dict[str, float] = {}
        all_path_prices: Dict[PathKey, float] = {}
        for task in self.taskset.tasks:
            updater = self.path_prices[task.name]
            updater.update(self.latencies, self.step_policy)
            all_path_prices.update(updater.prices)
            if phases is not None:
                now = time.perf_counter()
                path_seconds += now - mark
                mark = now
            new_latencies.update(
                self.allocators[task.name].allocate(
                    self.resource_prices.prices,
                    updater.prices,
                    current=self.latencies,
                )
            )
            if phases is not None:
                now = time.perf_counter()
                allocate_seconds += now - mark
                mark = now
        self.latencies = new_latencies
        if phases is not None:
            phases.observe("path_update", path_seconds)
            phases.observe("allocate", allocate_seconds)
            mark = time.perf_counter()

        # (2) Resources: update prices from the new latencies (the paper's
        # Resource Price Computation box).
        self.resource_prices.update(self.latencies, self.step_policy)
        if phases is not None:
            mark = phases.lap("price_update", mark)

        # (3) Congestion classification feeds the adaptive step-size
        # heuristic (Section 5.2).
        loads = self.taskset.resource_loads(self.latencies)  # statan: disable=REP016 -- scalar-backend iteration record
        congested_resources = self.resource_prices.congested(
            loads, tol=config.congestion_tol
        )
        congested_paths: Tuple[PathKey, ...] = ()
        for task in self.taskset.tasks:
            congested_paths += self.path_prices[task.name].congested(
                self.latencies, tol=config.congestion_tol
            )
        self.step_policy.observe(congested_resources, congested_paths)
        if phases is not None:
            phases.lap("classify", mark)

        utility = self.taskset.total_utility(self.latencies)  # statan: disable=REP016 -- scalar-backend iteration record
        self.detector.observe(utility, self.latencies)
        self.iteration += 1

        return IterationRecord(
            iteration=self.iteration,
            utility=utility,
            latencies=dict(self.latencies),
            resource_prices=dict(self.resource_prices.prices),
            path_prices=all_path_prices,
            resource_loads=loads,
            congested_resources=congested_resources,
            congested_paths=congested_paths,
            critical_paths={
                task.name: task.critical_path(self.latencies)[1]  # statan: disable=REP016 -- scalar-backend iteration record
                for task in self.taskset.tasks
            },
        )

    def _observe_iteration(self, record: IterationRecord,
                           prev_prices: Dict[str, float],
                           duration: float) -> None:
        """Feed one iteration into the metrics registry and the tracer."""
        if self._metrics is None:
            registry = self.telemetry.registry
            self._metrics = {
                "iterations": registry.counter(
                    "lla.iterations_total", "LLA iterations executed"),
                "timer": registry.timer(
                    "lla.iteration_seconds", "wall time per LLA iteration",
                    max_samples=4096),
                "utility": registry.gauge(
                    "lla.utility", "total utility at the last iterate"),
                "price_drift": registry.gauge(
                    "lla.price_drift",
                    "mean |Δμ_r| over the last iteration"),
                "congested_resources": registry.counter(
                    "lla.congested_resources_total",
                    "congested-resource observations (resource-iterations)"),
                "congested_paths": registry.counter(
                    "lla.congested_paths_total",
                    "congested-path observations (path-iterations)"),
            }
        m = self._metrics
        deltas = [
            abs(price - prev_prices.get(rname, 0.0))
            for rname, price in record.resource_prices.items()
        ]
        drift = sum(deltas) / len(deltas) if deltas else 0.0
        m["iterations"].inc()
        m["timer"].observe(duration)
        m["utility"].set(record.utility)
        m["price_drift"].set(drift)
        m["congested_resources"].inc(len(record.congested_resources))
        m["congested_paths"].inc(len(record.congested_paths))

        tracer = self.telemetry.tracer
        if tracer.enabled:
            tracer.emit("iteration", duration_s=duration,
                        **encode_record(record))
            if drift > 0.0:
                tracer.emit(
                    "price_update", iteration=record.iteration,
                    mean_abs_delta=drift, max_abs_delta=max(deltas),
                )
            congested = (
                frozenset(record.congested_resources),
                frozenset(record.congested_paths),
            )
            if self._prev_congested is not None and \
                    congested != self._prev_congested:
                prev_r, prev_p = self._prev_congested
                tracer.emit(
                    "congestion_flip", iteration=record.iteration,
                    resources_entered=sorted(congested[0] - prev_r),
                    resources_left=sorted(prev_r - congested[0]),
                    paths_entered=sorted(str(k) for k in congested[1] - prev_p),
                    paths_left=sorted(str(k) for k in prev_p - congested[1]),
                )
            self._prev_congested = congested

    def run(self, max_iterations: Optional[int] = None) -> OptimizationResult:
        """Run until convergence or the iteration budget is exhausted."""
        budget = max_iterations or self.config.max_iterations
        tracer = self.telemetry.tracer
        if tracer.enabled:
            tracer.emit(
                "run_started", runtime="optimizer",
                starting_iteration=self.iteration, budget=budget,
                tasks=len(self.taskset.tasks),
                subtasks=len(self.taskset.subtask_names),
                resources=len(self.taskset.resources),
            )
        debug = logger.isEnabledFor(logging.DEBUG)
        history = []
        converged = False
        for _ in range(budget):
            record = self.step()
            if debug:
                logger.debug(
                    "iteration %d: utility %.6f, %d congested resources, "
                    "%d congested paths", record.iteration, record.utility,
                    len(record.congested_resources),
                    len(record.congested_paths),
                )
            if self.config.record_history:
                history.append(record)
            if self.config.stop_on_convergence and self.detector.converged():
                converged = True
                break
        if not converged and self.detector.converged():
            converged = True
        final_utility = self.taskset.total_utility(self.latencies)  # statan: disable=REP016 -- one end-of-run summary; also serves the scalar backend
        if converged:
            if tracer.enabled:
                tracer.emit("convergence", iteration=self.iteration,
                            utility=float(final_utility))
        elif self.config.stop_on_convergence:
            logger.warning(
                "LLA did not converge within %d iterations "
                "(utility %.6f at iteration %d)",
                budget, final_utility, self.iteration,
            )
        if tracer.enabled:
            tracer.emit("run_finished", runtime="optimizer",
                        converged=converged, iterations=self.iteration,
                        utility=float(final_utility))
            if self.telemetry.registry.enabled:
                tracer.emit("metrics_snapshot",
                            metrics=self.telemetry.registry.snapshot())
        return OptimizationResult(
            converged=converged,
            iterations=self.iteration,
            latencies=dict(self.latencies),
            utility=final_utility,
            resource_prices=dict(self.resource_prices.prices),
            path_prices=self._collect_path_prices(),
            history=history,
        )

    def _collect_path_prices(self) -> Dict[PathKey, float]:
        """Current λ_p map, whichever backend owns the dual state."""
        if self._engine is not None:
            return self._engine.path_prices_dict()
        return {
            key: price
            for updater in self.path_prices.values()
            for key, price in updater.prices.items()
        }

    def reset(self) -> None:
        """Restore initial prices, step sizes and latencies."""
        self.resource_prices.reset()
        for updater in self.path_prices.values():
            updater.reset()
        self.step_policy.reset()
        if self._engine is not None:
            self._engine.reset()
        self.detector.reset()
        self._prev_congested = None
        self.iteration = 0
        self.latencies = self._initial_latencies()
        if self.config.warm_start:
            from repro.core.warmstart import apply_warm_start
            apply_warm_start(self)
