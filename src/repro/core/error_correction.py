"""Online model-error correction (Section 6.3).

The share model of Eq. 10 is worst-case: it assumes each job waits the full
scheduling lag and that the release times of subtasks sharing a resource are
synchronized adversarially.  In a live system that rarely happens, so the
model *over-predicts* latency and the optimizer over-allocates share.

The paper's correction is deliberately simple:

* periodically sample observed job latencies per subtask;
* keep a high percentile of the samples (above the 90th in the prototype)
  as the "observed" latency — still conservative, but empirical;
* form the additive error ``e = observed − predicted``;
* exponentially smooth ``e`` and fold it into the share model, so the share
  needed for target latency ``lat`` becomes ``share(lat − ê)``
  (see :class:`repro.model.share.CorrectedShare`).

The corrected model feeds back into the optimizer, which then discovers it
can meet the same critical times with less share (Figure 8's −23 % / +32 %
reallocation between fast and slow subtasks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import OptimizationError
from repro.model.share import CorrectedShare
from repro.model.task import TaskSet
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["ErrorSample", "ErrorCorrector"]


@dataclass
class ErrorSample:
    """One correction observation for a subtask."""

    subtask: str
    predicted: float
    observed: float

    @property
    def error(self) -> float:
        return self.observed - self.predicted


@dataclass
class _SubtaskErrorState:
    smoothed: float = 0.0
    initialized: bool = False
    history: List[float] = field(default_factory=list)


class ErrorCorrector:
    """Additive error estimation with exponential smoothing.

    Parameters
    ----------
    taskset:
        The workload whose share functions the corrector rewrites in place
        (each raw share function is wrapped in a
        :class:`~repro.model.share.CorrectedShare` on first update).
    alpha:
        Exponential smoothing weight for new error observations; the
        prototype used heavy smoothing, so the default is 0.2.
    percentile:
        The latency percentile taken over each batch of observed samples
        (the paper uses "greater than 90th percentile"; default 95).
    max_abs_correction:
        Optional absolute clamp on ``|ê|`` for noisy or adversarial
        samples.  ``None`` (the default, and the paper's behaviour) applies
        the smoothed error unclamped — a *negative* error (the model
        over-predicts, the common case) can never break the corrected
        model's domain since ``lat − ê > lat > 0``, and a positive error
        shifts the model's minimum latency up with it.
    """

    def __init__(self, taskset: TaskSet, alpha: float = 0.2,
                 percentile: float = 95.0,
                 max_abs_correction: Optional[float] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise OptimizationError(f"alpha must be in (0, 1], got {alpha!r}")
        if not 0.0 < percentile <= 100.0:
            raise OptimizationError(
                f"percentile must be in (0, 100], got {percentile!r}"
            )
        if max_abs_correction is not None and max_abs_correction <= 0.0:
            raise OptimizationError(
                f"max_abs_correction must be positive, got {max_abs_correction!r}"
            )
        self.taskset = taskset
        self.alpha = float(alpha)
        self.percentile = float(percentile)
        self.max_abs_correction = (
            float(max_abs_correction) if max_abs_correction is not None
            else None
        )
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._state: Dict[str, _SubtaskErrorState] = {
            name: _SubtaskErrorState() for name in taskset.subtask_names
        }

    # -- observation ------------------------------------------------------------

    def observe_batch(self, subtask: str, predicted: float,
                      observed_latencies: Iterable[float]) -> Optional[float]:
        """Fold a batch of observed job latencies into the error estimate.

        Takes the configured high percentile of the batch as the observed
        latency, forms the additive error against ``predicted``, and
        exponentially smooths it.  Returns the new smoothed error, or
        ``None`` when the batch was empty.
        """
        samples = np.asarray(list(observed_latencies), dtype=float)
        if samples.size == 0:
            return None
        observed = float(np.percentile(samples, self.percentile))
        return self.observe(ErrorSample(subtask, predicted, observed))

    def observe(self, sample: ErrorSample) -> float:
        """Fold one (already percentile-reduced) sample into the estimate."""
        state = self._require_state(sample.subtask)
        if state.initialized:
            state.smoothed = (
                (1.0 - self.alpha) * state.smoothed + self.alpha * sample.error
            )
        else:
            state.smoothed = sample.error
            state.initialized = True
        state.history.append(sample.error)
        return state.smoothed

    # -- application -------------------------------------------------------------

    def error(self, subtask: str) -> float:
        """Current smoothed additive error for a subtask (0 until observed)."""
        return self._require_state(subtask).smoothed

    def raw_errors(self, subtask: str) -> List[float]:
        """Unsmoothed error observations, in arrival order (Figure 8's
        fluctuating error line)."""
        return list(self._require_state(subtask).history)

    def apply(self, subtask: str) -> float:
        """Install the current error estimate into the task set's share model.

        Wraps the subtask's raw share function in a
        :class:`~repro.model.share.CorrectedShare` (idempotently) and sets
        its error to the clamped smoothed estimate.  Returns the applied
        error value.
        """
        state = self._require_state(subtask)
        share_fn = self.taskset.share_function(subtask)
        if isinstance(share_fn, CorrectedShare):
            corrected = share_fn
        else:
            corrected = CorrectedShare(share_fn, 0.0)
            self.taskset.set_share_function(subtask, corrected)

        applied = state.smoothed
        if self.max_abs_correction is not None:
            applied = float(np.clip(
                applied, -self.max_abs_correction, self.max_abs_correction
            ))
        corrected.set_error(applied)
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "correction.applied_total",
                "model-error corrections installed",
            ).inc()
            tel.registry.histogram(
                "correction.magnitude",
                "absolute applied model-error correction",
                max_samples=4096,
            ).observe(abs(applied))
            if tel.tracer.enabled:
                tel.tracer.emit("correction_applied", subtask=subtask,
                                error=float(applied))
        return applied

    def apply_all(self) -> Dict[str, float]:
        """Apply every initialized estimate; returns ``{subtask: error}``."""
        applied: Dict[str, float] = {}
        for name, state in self._state.items():
            if state.initialized:
                applied[name] = self.apply(name)
        return applied

    def _require_state(self, subtask: str) -> _SubtaskErrorState:
        try:
            return self._state[subtask]
        except KeyError as exc:
            raise OptimizationError(
                f"unknown subtask {subtask!r}"
            ) from exc
