"""Per-phase wall-time timers for the LLA iteration kernels.

One LLA iteration decomposes into the paper's four boxes — path-price
update (Eq. 9), latency allocation (Eq. 7), resource-price update
(Eq. 8) and congestion classification (the Section 5.2 feedback) — and
performance questions are almost always *which phase* got slower, not
whether the whole iteration did.  Both the scalar reference kernel and
the vectorized engine record into the same timer names::

    lla.phase.path_update_seconds
    lla.phase.allocate_seconds
    lla.phase.price_update_seconds
    lla.phase.classify_seconds

so backend comparisons (``repro bench-diff``) line up phase by phase.
Timing reads optimizer state only — it can never influence the iterates
(the traced-run bit-identity tests cover this).
"""

from __future__ import annotations

import time
from typing import Dict

from repro.telemetry import Telemetry
from repro.telemetry.metrics import Timer

__all__ = ["PHASES", "PhaseTimers"]

#: Iteration phases in execution order.
PHASES = ("path_update", "allocate", "price_update", "classify")


class PhaseTimers:
    """Timer handles for the four LLA iteration phases.

    Create lazily once per instrumented optimizer/engine; each phase's
    elapsed wall time goes into a bounded-window
    :class:`~repro.telemetry.metrics.Timer` in the context's registry.
    """

    __slots__ = ("_timers",)

    def __init__(self, telemetry: Telemetry) -> None:
        registry = telemetry.registry
        self._timers: Dict[str, Timer] = {
            name: registry.timer(
                f"lla.phase.{name}_seconds",
                f"wall time in the {name} phase of one LLA iteration",
                max_samples=4096,
            )
            for name in PHASES
        }

    def observe(self, phase: str, seconds: float) -> None:
        """Record one phase's elapsed wall time (accumulated or direct)."""
        self._timers[phase].observe(seconds)

    def lap(self, phase: str, started: float) -> float:
        """Observe the interval since ``started``; returns the new mark."""
        now = time.perf_counter()
        self._timers[phase].observe(now - started)
        return now
