"""Declarative fault plans for the distributed LLA runtime (chaos testing).

The paper's claim is that LLA keeps converging *online* while the system
changes underneath it (§4–§6): prices move on stale information, model
error is corrected from measurements, and workload/resource variation is
absorbed by the continuously-running optimization.  The message bus
already models benign transport faults (delay, i.i.d. loss, static
partitions); this module scripts the *malign* ones — agents crashing and
restarting, partitions that open and heal on a schedule, loss bursts and
full blackouts, duplicated and reordered messages, and resource capacity
shocks — as deterministic, seed-reproducible scenarios.

A :class:`FaultPlan` is pure data: a validated set of fault windows keyed
by protocol round.  The :class:`FaultInjector` binds a plan to a running
:class:`~repro.distributed.runtime.DistributedLLARuntime` and applies the
due actions at the start of each round, so the whole trajectory (including
every RNG draw on the bus) is a pure function of ``(seed, plan)``.

Round convention: all rounds are the runtime's 1-based round numbers, and
an action fires at the *start* of its round (before the controller phase).
A window ``start=100, end=150`` is therefore active during rounds
100..149 and cleared at the start of round 150.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from repro.errors import DistributedError

__all__ = [
    "CrashWindow",
    "PartitionWindow",
    "LossBurst",
    "DuplicationWindow",
    "ReorderWindow",
    "CapacityShock",
    "LoopStall",
    "ChurnStorm",
    "CheckpointCorruption",
    "CheckpointOutage",
    "FaultPlan",
    "FaultInjector",
]


def _require_round(value: int, label: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise DistributedError(
            f"{label} must be a round number >= 1, got {value!r}"
        )
    return value


def _require_window(start: int, end: Optional[int], label: str) -> None:
    _require_round(start, f"{label}.start")
    if end is not None and _require_round(end, f"{label}.end") <= start:
        raise DistributedError(
            f"{label} must end after it starts, got [{start}, {end})"
        )


@dataclass(frozen=True)
class CrashWindow:
    """Crash ``agent`` at round ``at``; restart it at ``restart_at``.

    ``restart_at=None`` means the agent stays down for the rest of the
    run.  ``warm=True`` restores the last checkpointed state from the
    runtime's :class:`~repro.distributed.checkpoint.CheckpointStore`
    (falling back to a cold restart when no checkpoint exists yet);
    ``warm=False`` forces a cold restart from the configured initials.
    """

    agent: str
    at: int
    restart_at: Optional[int] = None
    warm: bool = True

    def __post_init__(self):
        _require_window(self.at, self.restart_at, f"crash({self.agent})")


@dataclass(frozen=True)
class PartitionWindow:
    """Sever the ``a`` ↔ ``b`` link during ``[start, end)``; auto-heal at
    ``end`` (``end=None`` = never heals)."""

    a: str
    b: str
    start: int
    end: Optional[int] = None

    def __post_init__(self):
        _require_window(self.start, self.end,
                        f"partition({self.a}, {self.b})")


@dataclass(frozen=True)
class LossBurst:
    """Override the bus loss probability during ``[start, end)``.

    ``probability=1.0`` is a full blackout: every message sent during the
    window is dropped.  The bus's configured base probability is restored
    at ``end``.
    """

    start: int
    end: int
    probability: float = 1.0

    def __post_init__(self):
        _require_window(self.start, self.end, "loss burst")
        if not 0.0 <= self.probability <= 1.0 or \
                not math.isfinite(self.probability):
            raise DistributedError(
                f"loss burst probability must be in [0, 1], "
                f"got {self.probability!r}"
            )


@dataclass(frozen=True)
class DuplicationWindow:
    """Duplicate each sent message with ``probability`` during
    ``[start, end)``.

    The duplicate carries the original's sequence number, so a
    deduplicating bus delivers it at most once — the window verifies that
    replayed messages cannot double-apply price steps.
    """

    start: int
    end: int
    probability: float = 0.5

    def __post_init__(self):
        _require_window(self.start, self.end, "duplication window")
        if not 0.0 < self.probability <= 1.0 or \
                not math.isfinite(self.probability):
            raise DistributedError(
                f"duplication probability must be in (0, 1], "
                f"got {self.probability!r}"
            )


@dataclass(frozen=True)
class ReorderWindow:
    """Shuffle each receiver's per-round delivery order during
    ``[start, end)`` (deterministically, from the bus RNG)."""

    start: int
    end: int

    def __post_init__(self):
        _require_window(self.start, self.end, "reorder window")


@dataclass(frozen=True)
class CapacityShock:
    """Scale ``resource``'s availability by ``factor`` at round ``at``;
    restore the original availability at ``restore_at`` (``None`` =
    permanent).  ``factor == 0.0`` is a full blackout of the resource."""

    resource: str
    at: int
    factor: float
    restore_at: Optional[int] = None

    def __post_init__(self):
        _require_window(self.at, self.restore_at,
                        f"capacity shock({self.resource})")
        if self.factor < 0.0 or not math.isfinite(self.factor):
            raise DistributedError(
                f"capacity shock factor must be non-negative and finite, "
                f"got {self.factor!r}"
            )


@dataclass(frozen=True)
class LoopStall:
    """Service-layer fault: the control loop's optimizer makes no
    progress during ticks ``[at, at + ticks)`` — a wedged solve, a GC
    pause, a deadlocked worker.  The supervised loop's watchdog is
    expected to notice and restart from the last valid snapshot."""

    at: int
    ticks: int = 1

    def __post_init__(self):
        _require_round(self.at, "loop stall.at")
        if not isinstance(self.ticks, int) or isinstance(self.ticks, bool) \
                or self.ticks < 1:
            raise DistributedError(
                f"loop stall ticks must be an int >= 1, got {self.ticks!r}"
            )


@dataclass(frozen=True)
class ChurnStorm:
    """Service-layer fault: ``events`` churn events land in one tick.

    ``kind="oscillate"`` deregisters/re-registers existing tasks (net
    membership unchanged — pure coalescing pressure);
    ``kind="arrivals"`` registers fresh synthetic tasks (admission and
    shed pressure)."""

    at: int
    events: int = 16
    kind: str = "oscillate"

    def __post_init__(self):
        _require_round(self.at, "churn storm.at")
        if not isinstance(self.events, int) or \
                isinstance(self.events, bool) or self.events < 1:
            raise DistributedError(
                f"churn storm events must be an int >= 1, "
                f"got {self.events!r}"
            )
        if self.kind not in ("oscillate", "arrivals"):
            raise DistributedError(
                f"churn storm kind must be 'oscillate' or 'arrivals', "
                f"got {self.kind!r}"
            )


@dataclass(frozen=True)
class CheckpointCorruption:
    """Service-layer fault: at tick ``at`` the stored snapshot is
    replaced with garbage (bit rot, a torn write elsewhere).  The next
    restore must demote to a cold reset, not crash."""

    at: int

    def __post_init__(self):
        _require_round(self.at, "checkpoint corruption.at")


@dataclass(frozen=True)
class CheckpointOutage:
    """Service-layer fault: checkpoint I/O fails during ``[start, end)``
    (disk full, volume detached).  Saves are expected to retry with
    backoff and eventually trip the circuit breaker."""

    start: int
    end: int

    def __post_init__(self):
        _require_window(self.start, self.end, "checkpoint outage")


def _no_overlap(spans, label: str) -> None:
    """``spans`` is an iterable of (start, end-or-None) round pairs."""
    ordered = sorted(
        (start, end if end is not None else math.inf) for start, end in spans
    )
    for (s1, e1), (s2, _e2) in zip(ordered, ordered[1:]):
        if s2 < e1:
            raise DistributedError(
                f"{label} windows overlap: [{s1}, {e1}) and start {s2}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic chaos scenario: validated fault windows by round.

    All sequences are normalized to tuples so plans are hashable and safe
    to share.  Windows of the same kind on the same subject may not
    overlap (overlap would make restore order ambiguous); crash windows of
    the same agent may not overlap either.
    """

    crashes: Tuple[CrashWindow, ...] = ()
    partitions: Tuple[PartitionWindow, ...] = ()
    loss_bursts: Tuple[LossBurst, ...] = ()
    duplications: Tuple[DuplicationWindow, ...] = ()
    reorders: Tuple[ReorderWindow, ...] = ()
    capacity_shocks: Tuple[CapacityShock, ...] = ()
    # Service-layer faults (applied by repro.service.faults.
    # ServiceFaultInjector against a SupervisedService tick loop; the
    # distributed FaultInjector rejects plans that carry them).
    loop_stalls: Tuple[LoopStall, ...] = ()
    churn_storms: Tuple[ChurnStorm, ...] = ()
    checkpoint_corruptions: Tuple[CheckpointCorruption, ...] = ()
    checkpoint_outages: Tuple[CheckpointOutage, ...] = ()

    def __post_init__(self):
        for f in fields(self):
            object.__setattr__(self, f.name, tuple(getattr(self, f.name)))
        by_agent: Dict[str, List[Tuple[int, Optional[int]]]] = {}
        for crash in self.crashes:
            by_agent.setdefault(crash.agent, []).append(
                (crash.at, crash.restart_at)
            )
        for agent, spans in by_agent.items():
            _no_overlap(spans, f"crash({agent})")
        _no_overlap([(w.start, w.end) for w in self.loss_bursts],
                    "loss burst")
        _no_overlap([(w.start, w.end) for w in self.duplications],
                    "duplication")
        _no_overlap([(w.start, w.end) for w in self.reorders], "reorder")
        by_resource: Dict[str, List[Tuple[int, Optional[int]]]] = {}
        for shock in self.capacity_shocks:
            by_resource.setdefault(shock.resource, []).append(
                (shock.at, shock.restore_at)
            )
        for resource, spans in by_resource.items():
            _no_overlap(spans, f"capacity shock({resource})")
        _no_overlap([(s.at, s.at + s.ticks) for s in self.loop_stalls],
                    "loop stall")
        _no_overlap([(w.start, w.end) for w in self.checkpoint_outages],
                    "checkpoint outage")

    def is_empty(self) -> bool:
        return not any(getattr(self, f.name) for f in fields(self))

    def has_service_faults(self) -> bool:
        """Whether the plan targets the service control loop (loop
        stalls, churn storms, checkpoint corruption/outages)."""
        return bool(self.loop_stalls or self.churn_storms
                    or self.checkpoint_corruptions
                    or self.checkpoint_outages)

    def has_distributed_faults(self) -> bool:
        """Whether the plan targets the distributed runtime or bus."""
        return bool(self.crashes or self.partitions or self.loss_bursts
                    or self.duplications or self.reorders
                    or self.capacity_shocks)

    def agents(self) -> Tuple[str, ...]:
        """Every agent name the plan references."""
        names = {c.agent for c in self.crashes}
        for p in self.partitions:
            names.update((p.a, p.b))
        return tuple(sorted(names))

    def resources(self) -> Tuple[str, ...]:
        """Every resource name the plan references."""
        return tuple(sorted({s.resource for s in self.capacity_shocks}))

    def last_round(self) -> int:
        """The latest round at which the plan still does anything."""
        latest = 0
        for crash in self.crashes:
            latest = max(latest, crash.restart_at or crash.at)
        for part in self.partitions:
            latest = max(latest, part.end or part.start)
        for window in (self.loss_bursts + self.duplications + self.reorders):
            latest = max(latest, window.end)
        for shock in self.capacity_shocks:
            latest = max(latest, shock.restore_at or shock.at)
        for stall in self.loop_stalls:
            latest = max(latest, stall.at + stall.ticks)
        for storm in self.churn_storms:
            latest = max(latest, storm.at)
        for corruption in self.checkpoint_corruptions:
            latest = max(latest, corruption.at)
        for outage in self.checkpoint_outages:
            latest = max(latest, outage.end)
        return latest


@dataclass
class _Actions:
    """Everything a single round triggers, precomputed."""

    crashes: List[CrashWindow] = field(default_factory=list)
    restarts: List[CrashWindow] = field(default_factory=list)
    partitions: List[PartitionWindow] = field(default_factory=list)
    heals: List[PartitionWindow] = field(default_factory=list)
    burst_starts: List[LossBurst] = field(default_factory=list)
    burst_ends: List[LossBurst] = field(default_factory=list)
    dup_starts: List[DuplicationWindow] = field(default_factory=list)
    dup_ends: List[DuplicationWindow] = field(default_factory=list)
    reorder_starts: List[ReorderWindow] = field(default_factory=list)
    reorder_ends: List[ReorderWindow] = field(default_factory=list)
    shocks: List[CapacityShock] = field(default_factory=list)
    shock_restores: List[CapacityShock] = field(default_factory=list)


class FaultInjector:
    """Applies a :class:`FaultPlan` to a runtime, round by round.

    Validates every referenced agent and resource against the runtime at
    construction, then indexes the plan by round so :meth:`apply` is an
    O(1) dictionary probe on quiet rounds.
    """

    def __init__(self, plan: FaultPlan, runtime) -> None:
        if plan.has_service_faults():
            raise DistributedError(
                "fault plan contains service-layer faults (loop stalls, "
                "churn storms, checkpoint corruption/outages); apply those "
                "with repro.service.faults.ServiceFaultInjector against a "
                "SupervisedService, not the distributed FaultInjector"
            )
        self.plan = plan
        self.runtime = runtime
        known_agents = set(runtime.agent_names())
        for name in plan.agents():
            if name not in known_agents:
                raise DistributedError(
                    f"fault plan references unknown agent {name!r}; "
                    f"known agents: {sorted(known_agents)}"
                )
        for rname in plan.resources():
            if rname not in runtime.taskset.resources:
                raise DistributedError(
                    f"fault plan references unknown resource {rname!r}"
                )
        self._by_round: Dict[int, _Actions] = {}
        for crash in plan.crashes:
            self._at(crash.at).crashes.append(crash)
            if crash.restart_at is not None:
                self._at(crash.restart_at).restarts.append(crash)
        for part in plan.partitions:
            self._at(part.start).partitions.append(part)
            if part.end is not None:
                self._at(part.end).heals.append(part)
        for burst in plan.loss_bursts:
            self._at(burst.start).burst_starts.append(burst)
            self._at(burst.end).burst_ends.append(burst)
        for dup in plan.duplications:
            self._at(dup.start).dup_starts.append(dup)
            self._at(dup.end).dup_ends.append(dup)
        for reorder in plan.reorders:
            self._at(reorder.start).reorder_starts.append(reorder)
            self._at(reorder.end).reorder_ends.append(reorder)
        for shock in plan.capacity_shocks:
            self._at(shock.at).shocks.append(shock)
            if shock.restore_at is not None:
                self._at(shock.restore_at).shock_restores.append(shock)
        self._base_loss: Optional[float] = None
        self._base_availability: Dict[str, float] = {}

    def _at(self, round_number: int) -> _Actions:
        actions = self._by_round.get(round_number)
        if actions is None:
            actions = self._by_round[round_number] = _Actions()
        return actions

    # -- actuation ---------------------------------------------------------------

    def apply(self, round_number: int) -> None:
        """Fire every action scheduled for ``round_number``."""
        actions = self._by_round.get(round_number)
        if actions is None:
            return
        runtime, bus = self.runtime, self.runtime.bus
        # Restores first so back-to-back windows hand over cleanly.
        for burst in actions.burst_ends:
            bus.set_loss_probability(self._base_loss)
            self._base_loss = None
        for _dup in actions.dup_ends:
            bus.duplication_probability = 0.0
        for _reorder in actions.reorder_ends:
            bus.reorder = False
        for shock in actions.shock_restores:
            runtime.set_resource_availability(
                shock.resource, self._base_availability.pop(shock.resource)
            )
        for part in actions.heals:
            bus.heal(part.a, part.b)
        for crash in actions.restarts:
            runtime.restart_agent(crash.agent, warm=crash.warm)
        # Then this round's new faults.
        for crash in actions.crashes:
            runtime.crash_agent(crash.agent)
        for part in actions.partitions:
            bus.partition(part.a, part.b)
        for burst in actions.burst_starts:
            self._base_loss = bus.loss_probability
            bus.set_loss_probability(burst.probability)
        for dup in actions.dup_starts:
            bus.duplication_probability = dup.probability
        for _reorder in actions.reorder_starts:
            bus.reorder = True
        for shock in actions.shocks:
            self._base_availability[shock.resource] = \
                runtime.taskset.resources[shock.resource].availability
            runtime.set_resource_availability(
                shock.resource,
                self._base_availability[shock.resource] * shock.factor,
            )
