"""A simulated message bus for the distributed LLA agents.

Supports the failure modes a real control plane sees:

* **delay** — a fixed number of rounds plus an optional random extra delay,
  so agents act on stale prices/latencies;
* **loss** — i.i.d. message drops with a configured probability;
* **partitions** — pairs of agents that temporarily cannot exchange
  messages.

Delivery is deterministic given the seed: the bus holds every in-flight
:class:`~repro.distributed.messages.Envelope` in a round-indexed queue and
hands each agent its due messages at the start of a round, in send order.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import DistributedError
from repro.distributed.messages import Envelope, Payload

__all__ = ["MessageBus"]


class MessageBus:
    """Round-based message transport between named agents.

    Parameters
    ----------
    delay:
        Base delivery delay in rounds (0 = delivered at the start of the
        next phase of the same round, the synchronous ideal).
    jitter:
        Maximum extra delay in rounds, drawn uniformly from
        ``{0, …, jitter}`` per message.
    loss_probability:
        Probability that any individual message is silently dropped.
    seed:
        RNG seed; the bus is the only source of randomness in the runtime.
    """

    def __init__(self, delay: int = 0, jitter: int = 0,
                 loss_probability: float = 0.0, seed: int = 0):
        if delay < 0:
            raise DistributedError(f"delay must be >= 0, got {delay!r}")
        if jitter < 0:
            raise DistributedError(f"jitter must be >= 0, got {jitter!r}")
        if not 0.0 <= loss_probability < 1.0:
            raise DistributedError(
                f"loss_probability must be in [0, 1), got {loss_probability!r}"
            )
        self.delay = int(delay)
        self.jitter = int(jitter)
        self.loss_probability = float(loss_probability)
        self._rng = np.random.default_rng(seed)
        self._queue: Dict[int, List[Envelope]] = defaultdict(list)
        self._partitions: Set[Tuple[str, str]] = set()
        self.round = 0
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    # -- faults ------------------------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Sever the (bidirectional) link between two agents."""
        self._partitions.add((a, b))
        self._partitions.add((b, a))

    def heal(self, a: str, b: str) -> None:
        """Restore a severed link."""
        self._partitions.discard((a, b))
        self._partitions.discard((b, a))

    def _is_partitioned(self, a: str, b: str) -> bool:
        return (a, b) in self._partitions

    # -- transport ---------------------------------------------------------------

    def send(self, sender: str, receiver: str, payload: Payload) -> Optional[Envelope]:
        """Enqueue a message; returns the envelope, or ``None`` if dropped."""
        self.sent += 1
        if self._is_partitioned(sender, receiver):
            self.dropped += 1
            return None
        if self.loss_probability > 0.0 and \
                self._rng.random() < self.loss_probability:
            self.dropped += 1
            return None
        extra = int(self._rng.integers(0, self.jitter + 1)) if self.jitter else 0
        deliver_round = self.round + self.delay + extra
        envelope = Envelope(
            sender=sender,
            receiver=receiver,
            payload=payload,
            send_round=self.round,
            deliver_round=deliver_round,
        )
        self._queue[deliver_round].append(envelope)
        return envelope

    def deliver(self, receiver: str) -> List[Envelope]:
        """All messages due for ``receiver`` at the current round."""
        due = self._queue.get(self.round, [])
        mine = [env for env in due if env.receiver == receiver]
        if mine:
            self._queue[self.round] = [
                env for env in due if env.receiver != receiver
            ]
            self.delivered += len(mine)
        return mine

    def advance(self) -> None:
        """Move to the next round (undelivered past messages carry over)."""
        leftovers = self._queue.pop(self.round, [])
        self.round += 1
        if leftovers:
            # Messages nobody collected stay deliverable next round.
            self._queue[self.round] = leftovers + self._queue.get(self.round, [])

    def pending(self) -> int:
        """Number of in-flight messages."""
        return sum(len(v) for v in self._queue.values())
