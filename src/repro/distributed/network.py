"""A simulated message bus for the distributed LLA agents.

Supports the failure modes a real control plane sees:

* **delay** — a fixed number of rounds plus an optional random extra delay,
  so agents act on stale prices/latencies;
* **loss** — i.i.d. message drops with a configured probability
  (``1.0`` = a full blackout);
* **partitions** — pairs of agents that temporarily cannot exchange
  messages;
* **duplication** — a sent message is occasionally enqueued twice (same
  sequence number), modelling at-least-once transports and replays;
* **reordering** — a receiver's due messages are shuffled instead of
  arriving in send order;
* **expiry** — messages older than ``message_ttl`` rounds are discarded at
  delivery time, so a restarted agent is not flooded with stale state.

Replay safety: every envelope carries a bus-unique sequence number, and a
deduplicating bus delivers each sequence number to a receiver at most once
— duplicated or replayed messages can never double-apply a price step.

Delivery is deterministic given the seed: the bus holds every in-flight
:class:`~repro.distributed.messages.Envelope` in a round-indexed queue and
hands each agent its due messages at the start of a round, in send order
(or in a seed-determined shuffle while reordering is active).
"""

from __future__ import annotations

import logging
import math
from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import DistributedError
from repro.distributed.messages import Envelope, Payload
from repro.telemetry import NULL_TELEMETRY, SpanContext, Telemetry

__all__ = ["MessageBus"]

logger = logging.getLogger(__name__)


class MessageBus:
    """Round-based message transport between named agents.

    Parameters
    ----------
    delay:
        Base delivery delay in rounds (0 = delivered at the start of the
        next phase of the same round, the synchronous ideal).
    jitter:
        Maximum extra delay in rounds, drawn uniformly from
        ``{0, …, jitter}`` per message.
    loss_probability:
        Probability that any individual message is silently dropped.
        ``1.0`` is a legitimate configuration (a full blackout: every
        message is dropped), used by chaos scenarios.
    seed:
        RNG seed; the bus is the only source of randomness in the runtime.
    message_ttl:
        Maximum age in rounds a message stays deliverable; older messages
        expire at delivery time (``None`` = never expire).
    dedup:
        Deliver each envelope sequence number to a receiver at most once
        (protects against duplication/replay; no effect on unique sends).

    Agents may be declared up front with :meth:`register`; once any agent
    is registered, :meth:`partition`/:meth:`heal` reject unknown names
    (an unregistered bus stays permissive for ad-hoc use in tests).
    """

    def __init__(self, delay: int = 0, jitter: int = 0,
                 loss_probability: float = 0.0, seed: int = 0,
                 telemetry: Optional[Telemetry] = None,
                 message_ttl: Optional[int] = None,
                 dedup: bool = True):
        if delay < 0:
            raise DistributedError(f"delay must be >= 0, got {delay!r}")
        if jitter < 0:
            raise DistributedError(f"jitter must be >= 0, got {jitter!r}")
        if message_ttl is not None and message_ttl < 0:
            raise DistributedError(
                f"message_ttl must be >= 0, got {message_ttl!r}"
            )
        self.delay = int(delay)
        self.jitter = int(jitter)
        self.loss_probability = self._check_probability(loss_probability)
        self.message_ttl = message_ttl
        self.dedup = bool(dedup)
        self._rng = np.random.default_rng(seed)
        self._queue: Dict[int, List[Envelope]] = defaultdict(list)
        self._partitions: Set[Tuple[str, str]] = set()
        self._agents: Set[str] = set()
        self.round = 0
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.expired = 0
        self.duplicated = 0
        self.deduplicated = 0
        self._seq = 0
        self._duplication_probability = 0.0
        self.reorder = False
        # Per-receiver seen sequence numbers; populated only once
        # duplication has ever been switched on (otherwise every sequence
        # number is unique and the set would be pure overhead).
        self._seen: Dict[str, Set[int]] = {}
        self._track_seen = False
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._per_agent_sent: Dict[str, object] = {}
        # Span ids of message spans still awaiting their terminal event.
        # A duplicated envelope shares its original's span, so the first
        # terminal outcome (delivery, expiry, dedup, purge) closes the
        # span and later copies are no-ops.
        self._open_message_spans: Set[int] = set()

    @staticmethod
    def _check_probability(value: float) -> float:
        if not 0.0 <= value <= 1.0 or not math.isfinite(value):
            raise DistributedError(
                f"loss_probability must be in [0, 1], got {value!r}"
            )
        return float(value)

    # -- topology ----------------------------------------------------------------

    def register(self, *names: str) -> None:
        """Declare agent names; enables name validation on faults."""
        for name in names:
            if not name:
                raise DistributedError("agent name must be non-empty")
            self._agents.add(name)

    @property
    def agents(self) -> Set[str]:
        """Registered agent names (empty = permissive ad-hoc mode)."""
        return set(self._agents)

    def _check_agent(self, name: str, operation: str) -> None:
        if self._agents and name not in self._agents:
            raise DistributedError(
                f"{operation}: unknown agent {name!r}; registered agents: "
                f"{sorted(self._agents)}"
            )

    # -- fault knobs -------------------------------------------------------------

    @property
    def duplication_probability(self) -> float:
        """Probability that a sent message is enqueued twice."""
        return self._duplication_probability

    @duplication_probability.setter
    def duplication_probability(self, value: float) -> None:
        if not 0.0 <= value <= 1.0 or not math.isfinite(value):
            raise DistributedError(
                f"duplication_probability must be in [0, 1], got {value!r}"
            )
        self._duplication_probability = float(value)
        if value > 0.0:
            self._track_seen = True

    def set_loss_probability(self, value: float) -> None:
        """Change the drop probability mid-run (chaos loss bursts)."""
        self.loss_probability = self._check_probability(value)

    def partition(self, a: str, b: str) -> None:
        """Sever the (bidirectional) link between two agents."""
        self._check_agent(a, "partition")
        self._check_agent(b, "partition")
        logger.warning("bus partition: %s <-/-> %s (round %d)",
                       a, b, self.round)
        self._partitions.add((a, b))
        self._partitions.add((b, a))
        if self.telemetry.tracer.enabled:
            self.telemetry.tracer.emit("partition", a=a, b=b,
                                       round=self.round)

    def heal(self, a: str, b: str) -> None:
        """Restore a severed link."""
        self._check_agent(a, "heal")
        self._check_agent(b, "heal")
        logger.info("bus heal: %s <-> %s (round %d)", a, b, self.round)
        self._partitions.discard((a, b))
        self._partitions.discard((b, a))
        if self.telemetry.tracer.enabled:
            self.telemetry.tracer.emit("heal", a=a, b=b, round=self.round)

    def _is_partitioned(self, a: str, b: str) -> bool:
        return (a, b) in self._partitions

    # -- transport ---------------------------------------------------------------

    def _open_span(self, sender: str, receiver: str, payload: Payload,
                   parent: Optional[SpanContext]) -> Optional[SpanContext]:
        """Open a message span (``None`` when tracing is off)."""
        tel = self.telemetry
        if not tel.tracer.enabled:
            return None
        span = tel.spans.open_span(
            "message", parent=parent, sender=sender, receiver=receiver,
            payload=type(payload).__name__, send_round=self.round,
        )
        self._open_message_spans.add(span.span_id)
        return span

    def _close_span(self, span: Optional[SpanContext], status: str,
                    **attrs: object) -> None:
        """Close a message span once; later terminal outcomes of shared
        (duplicated) spans are ignored."""
        if span is None or span.span_id not in self._open_message_spans:
            return
        self._open_message_spans.discard(span.span_id)
        self.telemetry.spans.end_span(span, status=status, **attrs)

    def send(self, sender: str, receiver: str, payload: Payload,
             parent: Optional[SpanContext] = None) -> Optional[Envelope]:
        """Enqueue a message; returns the envelope, or ``None`` if dropped.

        ``parent`` is the causal span of the work that produced the
        message (an agent's act span); the message's own span is opened
        here and closed when the bus decides the message's fate.
        """
        self.sent += 1
        tel = self.telemetry
        instrumented = tel.enabled
        if instrumented:
            self._count_send(sender)
        span = self._open_span(sender, receiver, payload, parent)
        if self._is_partitioned(sender, receiver):
            self.dropped += 1
            if instrumented:
                self._count_drop(sender, receiver, payload, "partition")
            self._close_span(span, "dropped", reason="partition")
            return None
        if self.loss_probability > 0.0 and \
                (self.loss_probability >= 1.0
                 or self._rng.random() < self.loss_probability):
            self.dropped += 1
            if instrumented:
                self._count_drop(sender, receiver, payload, "loss")
            self._close_span(span, "dropped", reason="loss")
            return None
        extra = int(self._rng.integers(0, self.jitter + 1)) if self.jitter else 0
        deliver_round = self.round + self.delay + extra
        self._seq += 1
        envelope = Envelope(
            sender=sender,
            receiver=receiver,
            payload=payload,
            send_round=self.round,
            deliver_round=deliver_round,
            seq=self._seq,
            ttl=self.message_ttl,
            span=span,
        )
        self._queue[deliver_round].append(envelope)
        if self._duplication_probability > 0.0 and \
                self._rng.random() < self._duplication_probability:
            self._enqueue_duplicate(envelope)
        if instrumented:
            if deliver_round > self.round:
                tel.registry.counter(
                    "bus.delayed_total",
                    "messages queued past their send round",
                ).inc()
            tracer = tel.tracer
            if tracer.enabled:
                tracer.emit(
                    "message_sent", sender=sender, receiver=receiver,
                    payload=type(payload).__name__, send_round=self.round,
                    deliver_round=deliver_round,
                )
                if deliver_round > self.round:
                    tracer.emit(
                        "message_delayed", sender=sender, receiver=receiver,
                        payload=type(payload).__name__,
                        delay_rounds=deliver_round - self.round,
                    )
        return envelope

    def _enqueue_duplicate(self, original: Envelope) -> None:
        """Enqueue a replay of ``original`` (same seq; own jittered lag)."""
        extra = int(self._rng.integers(0, self.jitter + 1)) if self.jitter else 0
        deliver_round = self.round + self.delay + extra
        duplicate = Envelope(
            sender=original.sender,
            receiver=original.receiver,
            payload=original.payload,
            send_round=original.send_round,
            deliver_round=deliver_round,
            seq=original.seq,
            ttl=original.ttl,
            span=original.span,
        )
        self._queue[deliver_round].append(duplicate)
        self.duplicated += 1
        tel = self.telemetry
        if tel.enabled:
            tel.registry.counter(
                "bus.duplicated_total", "messages enqueued twice"
            ).inc()
            if tel.tracer.enabled:
                tel.tracer.emit(
                    "message_duplicated", sender=original.sender,
                    receiver=original.receiver, seq=original.seq,
                    send_round=original.send_round,
                )

    def _count_send(self, sender: str) -> None:
        registry = self.telemetry.registry
        registry.counter("bus.sent_total", "messages offered to the bus").inc()
        counter = self._per_agent_sent.get(sender)
        if counter is None:
            counter = registry.counter(
                f"bus.sent.{sender}", f"messages sent by agent {sender}"
            )
            self._per_agent_sent[sender] = counter
        counter.inc()

    def _count_drop(self, sender: str, receiver: str, payload: Payload,
                    reason: str) -> None:
        tel = self.telemetry
        tel.registry.counter(
            "bus.dropped_total", "messages dropped (loss or partition)"
        ).inc()
        if tel.tracer.enabled:
            tel.tracer.emit(
                "message_dropped", sender=sender, receiver=receiver,
                payload=type(payload).__name__, reason=reason,
                send_round=self.round,
            )

    def _is_expired(self, env: Envelope) -> bool:
        return env.ttl is not None and (self.round - env.send_round) > env.ttl

    def deliver(self, receiver: str) -> List[Envelope]:
        """All messages due for ``receiver`` at the current round.

        Expired envelopes (older than their TTL) and duplicate sequence
        numbers are filtered here — the receiver only ever sees fresh,
        at-most-once traffic.
        """
        due = self._queue.get(self.round, [])
        mine = [env for env in due if env.receiver == receiver]
        if not mine:
            return mine
        self._queue[self.round] = [
            env for env in due if env.receiver != receiver
        ]
        fresh: List[Envelope] = []
        for env in mine:
            if self._is_expired(env):
                self.expired += 1
                self._count_expired(env)
                self._close_span(env.span, "expired",
                                 age=self.round - env.send_round)
                continue
            if self.dedup and self._track_seen:
                seen = self._seen.setdefault(receiver, set())
                if env.seq in seen:
                    self.deduplicated += 1
                    self._count_dedup(env)
                    self._close_span(env.span, "duplicate")
                    continue
                seen.add(env.seq)
            fresh.append(env)
            self._close_span(env.span, "ok", deliver_round=self.round)
        if self.reorder and len(fresh) > 1:
            order = self._rng.permutation(len(fresh))
            fresh = [fresh[i] for i in order]
        self.delivered += len(fresh)
        if fresh and self.telemetry.enabled:
            self.telemetry.registry.counter(
                "bus.delivered_total", "messages handed to receivers"
            ).inc(len(fresh))
        return fresh

    def _count_expired(self, env: Envelope) -> None:
        tel = self.telemetry
        if not tel.enabled:
            return
        tel.registry.counter(
            "bus.expired_total", "messages discarded past their TTL"
        ).inc()
        if tel.tracer.enabled:
            tel.tracer.emit(
                "message_expired", sender=env.sender, receiver=env.receiver,
                seq=env.seq, age=self.round - env.send_round,
            )

    def _count_dedup(self, env: Envelope) -> None:
        tel = self.telemetry
        if not tel.enabled:
            return
        tel.registry.counter(
            "bus.deduplicated_total",
            "duplicate deliveries suppressed",
        ).inc()
        if tel.tracer.enabled:
            tel.tracer.emit(
                "message_deduplicated", sender=env.sender,
                receiver=env.receiver, seq=env.seq,
            )

    def purge(self, receiver: str, reason: str = "crash") -> int:
        """Discard every message due for ``receiver`` this round (used
        while the receiver is crashed); returns the number discarded."""
        due = self._queue.get(self.round, [])
        mine = [env for env in due if env.receiver == receiver]
        if not mine:
            return 0
        self._queue[self.round] = [
            env for env in due if env.receiver != receiver
        ]
        self.dropped += len(mine)
        if self.telemetry.enabled:
            for env in mine:
                self._count_drop(env.sender, receiver, env.payload, reason)
        for env in mine:
            self._close_span(env.span, "dropped", reason=reason)
        return len(mine)

    def advance(self) -> None:
        """Move to the next round (undelivered past messages carry over)."""
        leftovers = self._queue.pop(self.round, [])
        self.round += 1
        if leftovers:
            # Messages nobody collected stay deliverable next round.
            self._queue[self.round] = leftovers + self._queue.get(self.round, [])

    def pending(self) -> int:
        """Number of in-flight messages."""
        return sum(len(v) for v in self._queue.values())
