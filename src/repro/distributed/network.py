"""A simulated message bus for the distributed LLA agents.

Supports the failure modes a real control plane sees:

* **delay** — a fixed number of rounds plus an optional random extra delay,
  so agents act on stale prices/latencies;
* **loss** — i.i.d. message drops with a configured probability;
* **partitions** — pairs of agents that temporarily cannot exchange
  messages.

Delivery is deterministic given the seed: the bus holds every in-flight
:class:`~repro.distributed.messages.Envelope` in a round-indexed queue and
hands each agent its due messages at the start of a round, in send order.
"""

from __future__ import annotations

import logging
from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import DistributedError
from repro.distributed.messages import Envelope, Payload
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["MessageBus"]

logger = logging.getLogger(__name__)


class MessageBus:
    """Round-based message transport between named agents.

    Parameters
    ----------
    delay:
        Base delivery delay in rounds (0 = delivered at the start of the
        next phase of the same round, the synchronous ideal).
    jitter:
        Maximum extra delay in rounds, drawn uniformly from
        ``{0, …, jitter}`` per message.
    loss_probability:
        Probability that any individual message is silently dropped.
    seed:
        RNG seed; the bus is the only source of randomness in the runtime.
    """

    def __init__(self, delay: int = 0, jitter: int = 0,
                 loss_probability: float = 0.0, seed: int = 0,
                 telemetry: Optional[Telemetry] = None):
        if delay < 0:
            raise DistributedError(f"delay must be >= 0, got {delay!r}")
        if jitter < 0:
            raise DistributedError(f"jitter must be >= 0, got {jitter!r}")
        if not 0.0 <= loss_probability < 1.0:
            raise DistributedError(
                f"loss_probability must be in [0, 1), got {loss_probability!r}"
            )
        self.delay = int(delay)
        self.jitter = int(jitter)
        self.loss_probability = float(loss_probability)
        self._rng = np.random.default_rng(seed)
        self._queue: Dict[int, List[Envelope]] = defaultdict(list)
        self._partitions: Set[Tuple[str, str]] = set()
        self.round = 0
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._per_agent_sent: Dict[str, object] = {}

    # -- faults ------------------------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Sever the (bidirectional) link between two agents."""
        logger.warning("bus partition: %s <-/-> %s (round %d)",
                       a, b, self.round)
        self._partitions.add((a, b))
        self._partitions.add((b, a))
        if self.telemetry.tracer.enabled:
            self.telemetry.tracer.emit("partition", a=a, b=b,
                                       round=self.round)

    def heal(self, a: str, b: str) -> None:
        """Restore a severed link."""
        logger.info("bus heal: %s <-> %s (round %d)", a, b, self.round)
        self._partitions.discard((a, b))
        self._partitions.discard((b, a))
        if self.telemetry.tracer.enabled:
            self.telemetry.tracer.emit("heal", a=a, b=b, round=self.round)

    def _is_partitioned(self, a: str, b: str) -> bool:
        return (a, b) in self._partitions

    # -- transport ---------------------------------------------------------------

    def send(self, sender: str, receiver: str, payload: Payload) -> Optional[Envelope]:
        """Enqueue a message; returns the envelope, or ``None`` if dropped."""
        self.sent += 1
        tel = self.telemetry
        instrumented = tel.enabled
        if instrumented:
            self._count_send(sender)
        if self._is_partitioned(sender, receiver):
            self.dropped += 1
            if instrumented:
                self._count_drop(sender, receiver, payload, "partition")
            return None
        if self.loss_probability > 0.0 and \
                self._rng.random() < self.loss_probability:
            self.dropped += 1
            if instrumented:
                self._count_drop(sender, receiver, payload, "loss")
            return None
        extra = int(self._rng.integers(0, self.jitter + 1)) if self.jitter else 0
        deliver_round = self.round + self.delay + extra
        envelope = Envelope(
            sender=sender,
            receiver=receiver,
            payload=payload,
            send_round=self.round,
            deliver_round=deliver_round,
        )
        self._queue[deliver_round].append(envelope)
        if instrumented:
            if deliver_round > self.round:
                tel.registry.counter(
                    "bus.delayed_total",
                    "messages queued past their send round",
                ).inc()
            tracer = tel.tracer
            if tracer.enabled:
                tracer.emit(
                    "message_sent", sender=sender, receiver=receiver,
                    payload=type(payload).__name__, send_round=self.round,
                    deliver_round=deliver_round,
                )
                if deliver_round > self.round:
                    tracer.emit(
                        "message_delayed", sender=sender, receiver=receiver,
                        payload=type(payload).__name__,
                        delay_rounds=deliver_round - self.round,
                    )
        return envelope

    def _count_send(self, sender: str) -> None:
        registry = self.telemetry.registry
        registry.counter("bus.sent_total", "messages offered to the bus").inc()
        counter = self._per_agent_sent.get(sender)
        if counter is None:
            counter = registry.counter(
                f"bus.sent.{sender}", f"messages sent by agent {sender}"
            )
            self._per_agent_sent[sender] = counter
        counter.inc()

    def _count_drop(self, sender: str, receiver: str, payload: Payload,
                    reason: str) -> None:
        tel = self.telemetry
        tel.registry.counter(
            "bus.dropped_total", "messages dropped (loss or partition)"
        ).inc()
        if tel.tracer.enabled:
            tel.tracer.emit(
                "message_dropped", sender=sender, receiver=receiver,
                payload=type(payload).__name__, reason=reason,
                send_round=self.round,
            )

    def deliver(self, receiver: str) -> List[Envelope]:
        """All messages due for ``receiver`` at the current round."""
        due = self._queue.get(self.round, [])
        mine = [env for env in due if env.receiver == receiver]
        if mine:
            self._queue[self.round] = [
                env for env in due if env.receiver != receiver
            ]
            self.delivered += len(mine)
            if self.telemetry.enabled:
                self.telemetry.registry.counter(
                    "bus.delivered_total", "messages handed to receivers"
                ).inc(len(mine))
        return mine

    def advance(self) -> None:
        """Move to the next round (undelivered past messages carry over)."""
        leftovers = self._queue.pop(self.round, [])
        self.round += 1
        if leftovers:
            # Messages nobody collected stay deliverable next round.
            self._queue[self.round] = leftovers + self._queue.get(self.round, [])

    def pending(self) -> int:
        """Number of in-flight messages."""
        return sum(len(v) for v in self._queue.values())
