"""The distributed LLA agents: task controllers and resource price agents.

Section 4.1: "a task controller for each task in the system … determines the
resource share and latencies for all subtasks that belong to the task", and
each resource "computes a price value and sends it to the controllers of the
tasks that have subtasks executing at the resource" (prices for links are
computed by one of the link's endpoints — here simply by the link's agent).

Each agent holds only local state plus its last-received view of the remote
state, and exchanges :mod:`repro.distributed.messages` over a
:class:`~repro.distributed.network.MessageBus`.  Under a zero-delay lossless
bus with fixed step sizes, the runtime's iterates match the in-process
:class:`~repro.core.optimizer.LLAOptimizer` exactly (integration-tested).

Step-size adaptation is local, as it must be in a real deployment: a
resource doubles its own γ while it observes congestion; a controller
doubles a path's γ while any resource the path traverses reported a
congestion bit in its last price message.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import DistributedError
from repro.core.allocation import LatencyAllocator
from repro.core.prices import update_path_price, update_resource_price
from repro.core.state import PathKey
from repro.distributed.messages import Envelope, LatencyMessage, PriceMessage
from repro.distributed.network import MessageBus
from repro.model.task import Task, TaskSet

__all__ = ["ResourceAgent", "TaskControllerAgent", "LocalGamma"]


class LocalGamma:
    """Per-agent multiplicative step-size state (the adaptive heuristic,
    localized).  ``adapt=False`` freezes it at ``initial`` (fixed policy)."""

    def __init__(self, initial: float = 1.0, growth: float = 2.0,
                 max_gamma: float = 8.0, adapt: bool = True):
        if initial <= 0.0:
            raise DistributedError(f"gamma must be positive, got {initial!r}")
        self.initial = float(initial)
        self.growth = float(growth)
        self.max_gamma = float(max_gamma)
        self.adapt = bool(adapt)
        self.value = self.initial

    def observe(self, congested: bool) -> float:
        if not self.adapt:
            return self.value
        if congested:
            self.value = min(self.value * self.growth, self.max_gamma)
        else:
            self.value = self.initial
        return self.value


class ResourceAgent:
    """Owns one resource's price ``μ_r`` (the Resource Price Computation box).

    Keeps the most recent latency heard for every subtask hosted on the
    resource; missing or stale entries simply persist — exactly the
    behaviour of a real system under message loss.
    """

    def __init__(self, taskset: TaskSet, resource_name: str, bus: MessageBus,
                 initial_price: float = 1.0,
                 gamma: Optional[LocalGamma] = None):
        self.taskset = taskset
        self.resource = taskset.resources[resource_name]
        self.name = f"resource:{resource_name}"
        self.bus = bus
        self.price = float(initial_price)
        self.gamma = gamma or LocalGamma()
        self.paused = False
        # Which controllers to notify: tasks with subtasks executing here.
        self._controllers = sorted({
            task.name for task, _sub in taskset.subtasks_on(resource_name)
        })
        self._hosted = [sub.name for _t, sub in taskset.subtasks_on(resource_name)]
        self.latencies: Dict[str, float] = {}
        self.congested = False

    def receive(self, envelopes: Iterable[Envelope]) -> None:
        for env in envelopes:
            payload = env.payload
            if isinstance(payload, LatencyMessage):
                if payload.subtask in set(self._hosted):
                    self.latencies[payload.subtask] = payload.latency

    def load(self) -> Optional[float]:
        """Share sum from the latest heard latencies (``None`` until every
        hosted subtask has reported at least once)."""
        total = 0.0
        for name in self._hosted:
            if name not in self.latencies:
                return None
            total += self.taskset.share_function(name).share(self.latencies[name])
        return total

    def act(self, iteration: int) -> None:
        """Update ``μ_r`` (Eq. 8) and broadcast the price + congestion bit."""
        if self.paused:
            return
        load = self.load()
        if load is not None:
            self.congested = load > self.resource.availability + 1e-9
            gamma = self.gamma.observe(self.congested)
            self.price = update_resource_price(
                self.price, gamma, self.resource.availability, load
            )
        for controller in self._controllers:
            self.bus.send(
                self.name,
                f"controller:{controller}",
                PriceMessage(
                    resource=self.resource.name,
                    price=self.price,
                    congested=self.congested,
                    iteration=iteration,
                ),
            )


class TaskControllerAgent:
    """Owns one task's path prices and latencies (the Latency Allocation box).

    The controller knows its own task's structure and latencies perfectly
    (they are local state); its view of resource prices is whatever the
    last received :class:`PriceMessage` said.
    """

    def __init__(self, taskset: TaskSet, task: Task, bus: MessageBus,
                 initial_resource_price: float = 1.0,
                 initial_path_price: float = 0.0,
                 gamma_factory=None, max_latency_factor: float = 1.0):
        self.taskset = taskset
        self.task = task
        self.name = f"controller:{task.name}"
        self.bus = bus
        self.allocator = LatencyAllocator(
            taskset, task, max_latency_factor=max_latency_factor
        )
        gamma_factory = gamma_factory or (lambda: LocalGamma())
        # Local view of μ_r for resources this task uses, seeded at the
        # protocol's initial price so round 0 matches the centralized run.
        self.resource_prices: Dict[str, float] = {
            sub.resource: float(initial_resource_price)
            for sub in task.subtasks
        }
        self.path_prices: Dict[PathKey, float] = {
            PathKey(task.name, i): float(initial_path_price)
            for i in range(len(task.graph.paths))
        }
        self._path_gammas: Dict[PathKey, LocalGamma] = {
            key: gamma_factory() for key in self.path_prices
        }
        # Congestion bits heard from resources, by resource name.
        self._congested_resources: Dict[str, bool] = {}
        # Resources traversed by each path (for the adaptive heuristic).
        resource_of = {s.name: s.resource for s in task.subtasks}
        self._path_resources: Dict[PathKey, frozenset] = {
            PathKey(task.name, i): frozenset(resource_of[s] for s in path)
            for i, path in enumerate(task.graph.paths)
        }
        self.latencies: Dict[str, float] = self.allocator.allocate(
            self.resource_prices, self.path_prices
        )
        self.paused = False

    def receive(self, envelopes: Iterable[Envelope]) -> None:
        for env in envelopes:
            payload = env.payload
            if isinstance(payload, PriceMessage):
                self.resource_prices[payload.resource] = payload.price
                self._congested_resources[payload.resource] = payload.congested

    def act(self, iteration: int) -> None:
        """Update λ_p (Eq. 9), allocate latencies (Eq. 7), send them out."""
        if self.paused:
            return
        for i, path in enumerate(self.task.graph.paths):
            key = PathKey(self.task.name, i)
            path_congested = any(
                self._congested_resources.get(r, False)
                for r in self._path_resources[key]
            )
            gamma = self._path_gammas[key].observe(path_congested)
            lat = self.task.graph.path_latency(path, self.latencies)
            self.path_prices[key] = update_path_price(
                self.path_prices[key], gamma, lat, self.task.critical_time
            )
        self.latencies = self.allocator.allocate(
            self.resource_prices, self.path_prices, current=self.latencies
        )
        for sub in self.task.subtasks:
            self.bus.send(
                self.name,
                f"resource:{sub.resource}",
                LatencyMessage(
                    task=self.task.name,
                    subtask=sub.name,
                    latency=self.latencies[sub.name],
                    iteration=iteration,
                ),
            )
