"""The distributed LLA agents: task controllers and resource price agents.

Section 4.1: "a task controller for each task in the system … determines the
resource share and latencies for all subtasks that belong to the task", and
each resource "computes a price value and sends it to the controllers of the
tasks that have subtasks executing at the resource" (prices for links are
computed by one of the link's endpoints — here simply by the link's agent).

Each agent holds only local state plus its last-received view of the remote
state, and exchanges :mod:`repro.distributed.messages` over a
:class:`~repro.distributed.network.MessageBus`.  Under a zero-delay lossless
bus with fixed step sizes, the runtime's iterates match the in-process
:class:`~repro.core.optimizer.LLAOptimizer` exactly (integration-tested).

Step-size adaptation is local, as it must be in a real deployment: a
resource doubles its own γ while it observes congestion; a controller
doubles a path's γ while any resource the path traverses reported a
congestion bit in its last price message.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence

from repro.errors import DistributedError
from repro.core.allocation import LatencyAllocator
from repro.core.prices import update_path_price, update_resource_price
from repro.core.state import PathKey
from repro.distributed.messages import Envelope, LatencyMessage, PriceMessage
from repro.distributed.network import MessageBus
from repro.model.task import Task, TaskSet
from repro.telemetry.spans import SpanContext

__all__ = ["ResourceAgent", "TaskControllerAgent", "LocalGamma"]


class LocalGamma:
    """Per-agent multiplicative step-size state (the adaptive heuristic,
    localized).  ``adapt=False`` freezes it at ``initial`` (fixed policy)."""

    def __init__(self, initial: float = 1.0, growth: float = 2.0,
                 max_gamma: float = 8.0, adapt: bool = True):
        if initial <= 0.0:
            raise DistributedError(f"gamma must be positive, got {initial!r}")
        self.initial = float(initial)
        self.growth = float(growth)
        self.max_gamma = float(max_gamma)
        self.adapt = bool(adapt)
        self.value = self.initial

    def observe(self, congested: bool) -> float:
        if not self.adapt:
            return self.value
        if congested:
            self.value = min(self.value * self.growth, self.max_gamma)
        else:
            self.value = self.initial
        return self.value


class ResourceAgent:
    """Owns one resource's price ``μ_r`` (the Resource Price Computation box).

    Keeps the most recent latency heard for every subtask hosted on the
    resource; missing or stale entries simply persist — exactly the
    behaviour of a real system under message loss.
    """

    def __init__(self, taskset: TaskSet, resource_name: str, bus: MessageBus,
                 initial_price: float = 1.0,
                 gamma: Optional[LocalGamma] = None,
                 hosted: Optional[Sequence[str]] = None,
                 controllers: Optional[Sequence[str]] = None):
        self.taskset = taskset
        self.resource = taskset.resources[resource_name]
        self.name = f"resource:{resource_name}"
        self.bus = bus
        self.initial_price = float(initial_price)
        self.price = float(initial_price)
        self.gamma = gamma or LocalGamma()
        self.paused = False
        self.crashed = False
        # Which controllers to notify: tasks with subtasks executing here.
        # The runtime hands both views down from the compiled structure
        # (one O(S) pass total); standalone construction derives them by
        # walking the object graph for this one resource.
        if controllers is not None:
            self._controllers = list(controllers)
        else:
            self._controllers = sorted({
                task.name for task, _sub in taskset.subtasks_on(resource_name)  # statan: disable=REP016 -- standalone-construction fallback; the runtime passes structure views
            })
        if hosted is not None:
            self._hosted = list(hosted)
        else:
            self._hosted = [
                sub.name for _t, sub in taskset.subtasks_on(resource_name)  # statan: disable=REP016 -- standalone-construction fallback; the runtime passes structure views
            ]
        self._hosted_set = frozenset(self._hosted)
        self.latencies: Dict[str, float] = {}
        self.congested = False
        # Causal-span plumbing (set by the runtime while tracing): the
        # span of this agent's in-progress act, and the span of the last
        # message whose payload changed local state.
        self.act_context: Optional[SpanContext] = None
        self.last_cause: Optional[SpanContext] = None

    # -- crash/recovery ----------------------------------------------------------

    def to_checkpoint(self) -> Dict[str, Any]:
        """Snapshot the agent's mutable state for warm restarts."""
        return {
            "price": self.price,
            "gamma": self.gamma.value,
            "latencies": dict(self.latencies),
            "congested": self.congested,
        }

    def restore_checkpoint(self, state: Dict[str, Any]) -> None:
        """Warm-restart: resume from a checkpointed snapshot."""
        self.price = float(state["price"])
        self.gamma.value = float(state["gamma"])
        self.latencies = dict(state["latencies"])
        self.congested = bool(state["congested"])

    def cold_restart(self) -> None:
        """Cold-restart: forget everything, back to the configured initials."""
        self.price = self.initial_price
        self.gamma.value = self.gamma.initial
        self.latencies.clear()
        self.congested = False

    def receive(self, envelopes: Iterable[Envelope]) -> None:
        for env in envelopes:
            payload = env.payload
            if isinstance(payload, LatencyMessage):
                if payload.subtask in self._hosted_set:
                    self.latencies[payload.subtask] = payload.latency
                    if env.span is not None:
                        self.last_cause = env.span

    def load(self) -> Optional[float]:
        """Share sum from the latest heard latencies (``None`` until every
        hosted subtask has reported at least once)."""
        total = 0.0
        for name in self._hosted:
            if name not in self.latencies:
                return None
            total += self.taskset.share_function(name).share(self.latencies[name])
        return total

    def act(self, iteration: int) -> None:
        """Update ``μ_r`` (Eq. 8) and broadcast the price + congestion bit."""
        if self.paused:
            return
        load = self.load()
        if load is not None:
            self.congested = load > self.resource.availability + 1e-9
            gamma = self.gamma.observe(self.congested)
            self.price = update_resource_price(
                self.price, gamma, self.resource.availability, load
            )
        for controller in self._controllers:
            self.bus.send(
                self.name,
                f"controller:{controller}",
                PriceMessage(
                    resource=self.resource.name,
                    price=self.price,
                    congested=self.congested,
                    iteration=iteration,
                ),
                parent=self.act_context,
            )


class TaskControllerAgent:
    """Owns one task's path prices and latencies (the Latency Allocation box).

    The controller knows its own task's structure and latencies perfectly
    (they are local state); its view of resource prices is whatever the
    last received :class:`PriceMessage` said.

    With ``staleness_limit`` set, the controller doubles as its own
    failure detector: when its *newest* resource price is older than the
    limit (the price's sender crashed, or the link is down), it stops
    trusting the frozen prices — Eq. 8/9 dual updates are suspended and
    the latencies fall back to the last critical-time-feasible assignment
    the controller produced, so the degraded task never violates
    ``Σ lat ≤ Cᵢ`` while the control loop is broken.  Fresh prices lift
    the degradation and the dual iteration resumes where it froze.
    """

    def __init__(self, taskset: TaskSet, task: Task, bus: MessageBus,
                 initial_resource_price: float = 1.0,
                 initial_path_price: float = 0.0,
                 gamma_factory=None, max_latency_factor: float = 1.0,
                 staleness_limit: Optional[int] = None):
        if staleness_limit is not None and staleness_limit < 1:
            raise DistributedError(
                f"staleness_limit must be >= 1, got {staleness_limit!r}"
            )
        self.taskset = taskset
        self.task = task
        self.name = f"controller:{task.name}"
        self.bus = bus
        self.allocator = LatencyAllocator(
            taskset, task, max_latency_factor=max_latency_factor
        )
        self._initial_resource_price = float(initial_resource_price)
        self._initial_path_price = float(initial_path_price)
        self.staleness_limit = staleness_limit
        gamma_factory = gamma_factory or (lambda: LocalGamma())
        # Local view of μ_r for resources this task uses, seeded at the
        # protocol's initial price so round 0 matches the centralized run.
        self.resource_prices: Dict[str, float] = {
            sub.resource: float(initial_resource_price)
            for sub in task.subtasks
        }
        self.path_prices: Dict[PathKey, float] = {
            PathKey(task.name, i): float(initial_path_price)
            for i in range(len(task.graph.paths))
        }
        self._path_gammas: Dict[PathKey, LocalGamma] = {
            key: gamma_factory() for key in self.path_prices
        }
        # Congestion bits heard from resources, by resource name.
        self._congested_resources: Dict[str, bool] = {}
        # Resources traversed by each path (for the adaptive heuristic).
        resource_of = {s.name: s.resource for s in task.subtasks}
        self._path_resources: Dict[PathKey, frozenset] = {
            PathKey(task.name, i): frozenset(resource_of[s] for s in path)
            for i, path in enumerate(task.graph.paths)
        }
        # Bus round at which each resource's price was last refreshed; the
        # seeded initial prices count as round-0 information.
        self._price_heard_round: Dict[str, int] = {
            r: 0 for r in self.resource_prices
        }
        self.latencies: Dict[str, float] = self.allocator.allocate(
            self.resource_prices, self.path_prices
        )
        self._last_feasible: Optional[Dict[str, float]] = None
        self.degraded = False
        self.degraded_rounds = 0
        self.paused = False
        self.crashed = False
        # Causal-span plumbing (set by the runtime while tracing).
        self.act_context: Optional[SpanContext] = None
        self.last_cause: Optional[SpanContext] = None

    def receive(self, envelopes: Iterable[Envelope]) -> None:
        for env in envelopes:
            payload = env.payload
            if isinstance(payload, PriceMessage):
                self.resource_prices[payload.resource] = payload.price
                self._congested_resources[payload.resource] = payload.congested
                self._price_heard_round[payload.resource] = env.send_round
                if env.span is not None:
                    self.last_cause = env.span

    # -- failure detection -------------------------------------------------------

    def staleness(self) -> int:
        """Age (in bus rounds) of the most outdated resource price."""
        if not self._price_heard_round:
            return 0
        return self.bus.round - min(self._price_heard_round.values())

    def is_stale(self) -> bool:
        """True when the failure detector considers the price view broken."""
        return (
            self.staleness_limit is not None
            and self.staleness() > self.staleness_limit
        )

    def _paths_feasible(self, latencies: Dict[str, float]) -> bool:
        graph = self.task.graph
        budget = self.task.critical_time + 1e-9
        return all(
            graph.path_latency(path, latencies) <= budget  # statan: disable=REP016 -- agent-local walk of its own task graph
            for path in graph.paths
        )

    # -- crash/recovery ----------------------------------------------------------

    def to_checkpoint(self) -> Dict[str, Any]:
        """Snapshot the agent's mutable state for warm restarts."""
        return {
            "resource_prices": dict(self.resource_prices),
            "path_prices": dict(self.path_prices),
            "path_gammas": {
                key: gamma.value for key, gamma in self._path_gammas.items()
            },
            "congested_resources": dict(self._congested_resources),
            "price_heard_round": dict(self._price_heard_round),
            "latencies": dict(self.latencies),
            "last_feasible": (
                None if self._last_feasible is None
                else dict(self._last_feasible)
            ),
        }

    def restore_checkpoint(self, state: Dict[str, Any]) -> None:
        """Warm-restart: resume from a checkpointed snapshot."""
        self.resource_prices = dict(state["resource_prices"])
        self.path_prices = dict(state["path_prices"])
        for key, value in state["path_gammas"].items():
            self._path_gammas[key].value = float(value)
        self._congested_resources = dict(state["congested_resources"])
        self._price_heard_round = dict(state["price_heard_round"])
        self.latencies = dict(state["latencies"])
        last = state["last_feasible"]
        self._last_feasible = None if last is None else dict(last)
        self.degraded = False

    def cold_restart(self) -> None:
        """Cold-restart: forget everything, back to the configured initials."""
        for r in self.resource_prices:
            self.resource_prices[r] = self._initial_resource_price
        for key in self.path_prices:
            self.path_prices[key] = self._initial_path_price
        for gamma in self._path_gammas.values():
            gamma.value = gamma.initial
        self._congested_resources.clear()
        # A cold restart treats the initial prices as fresh-as-of-now, so
        # the failure detector restarts its staleness clock.
        self._price_heard_round = {
            r: self.bus.round for r in self.resource_prices
        }
        self.latencies = self.allocator.allocate(
            self.resource_prices, self.path_prices
        )
        self._last_feasible = None
        self.degraded = False

    def act(self, iteration: int) -> None:
        """Update λ_p (Eq. 9), allocate latencies (Eq. 7), send them out.

        When the failure detector trips, the dual updates are frozen and
        the last critical-time-feasible assignment is re-enacted instead
        (graceful degradation); latency messages keep flowing either way
        so resource agents retain an accurate load view.
        """
        if self.paused:
            return
        if self.is_stale():
            self.degraded = True
            self.degraded_rounds += 1
            if self._last_feasible is not None:
                self.latencies = dict(self._last_feasible)
        else:
            self.degraded = False
            for i, path in enumerate(self.task.graph.paths):
                key = PathKey(self.task.name, i)
                path_congested = any(
                    self._congested_resources.get(r, False)
                    for r in self._path_resources[key]
                )
                gamma = self._path_gammas[key].observe(path_congested)
                lat = self.task.graph.path_latency(path, self.latencies)  # statan: disable=REP016 -- agent-local walk of its own task graph
                self.path_prices[key] = update_path_price(
                    self.path_prices[key], gamma, lat, self.task.critical_time
                )
            self.latencies = self.allocator.allocate(
                self.resource_prices, self.path_prices, current=self.latencies
            )
            if self.staleness_limit is not None and \
                    self._paths_feasible(self.latencies):
                self._last_feasible = dict(self.latencies)
        for sub in self.task.subtasks:
            self.bus.send(
                self.name,
                f"resource:{sub.resource}",
                LatencyMessage(
                    task=self.task.name,
                    subtask=sub.name,
                    latency=self.latencies[sub.name],
                    iteration=iteration,
                ),
                parent=self.act_context,
            )
