"""The distributed LLA runtime: agents + bus + round loop.

One *round* is one iteration of the paper's distributed algorithm:

1. controllers collect due price messages, update path prices, allocate
   latencies and send them to the resources (Latency Allocation box);
2. resources collect due latency messages, update their prices and send
   them (with congestion bits) back to the controllers (Resource Price
   Computation box).

With a zero-delay, lossless bus and fixed step sizes this sequence is
bit-for-bit the in-process :class:`~repro.core.optimizer.LLAOptimizer`
iteration; with delays, jitter, drops or partitions it shows how the
protocol degrades (it keeps converging under moderate loss — prices simply
move on stale information, which the dual-gradient iteration tolerates).

Utility/feasibility are measured by an omniscient observer (this module) —
the agents themselves never see global state.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.state import IterationRecord, OptimizationResult, PathKey
from repro.core.structure import TaskSetStructure, compile_structure
from repro.core.vectorized import observe_assignment
from repro.distributed.activation import ActivationSchedule, EveryRound
from repro.distributed.agents import (
    LocalGamma,
    ResourceAgent,
    TaskControllerAgent,
)
from repro.distributed.checkpoint import CheckpointStore
from repro.distributed.faults import FaultInjector, FaultPlan
from repro.distributed.messages import PriceMessage
from repro.distributed.network import MessageBus
from repro.errors import DistributedError, ModelError, OptimizationError
from repro.model.fingerprint import taskset_fingerprint
from repro.model.task import TaskSet
from repro.telemetry import (
    NULL_TELEMETRY,
    SpanContext,
    SpanTracker,
    Telemetry,
    encode_record,
)

__all__ = ["DistributedConfig", "DistributedLLARuntime"]

logger = logging.getLogger(__name__)


@dataclass
class DistributedConfig:
    """Runtime tunables (bus faults + protocol constants)."""

    rounds: int = 500
    delay: int = 0
    jitter: int = 0
    loss_probability: float = 0.0
    seed: int = 0
    initial_resource_price: float = 1.0
    initial_path_price: float = 0.0
    initial_gamma: float = 1.0
    adaptive: bool = True
    max_gamma: float = 8.0
    max_latency_factor: float = 1.0
    record_history: bool = True
    #: Which agents act each round; None = the synchronous ideal.
    activation: Optional[ActivationSchedule] = None
    #: Scripted chaos scenario applied round by round; None = fault-free.
    fault_plan: Optional[FaultPlan] = None
    #: Controllers freeze dual updates and fall back to their last
    #: critical-time-feasible assignment once their newest resource price
    #: is older than this many rounds; None disables the detector.
    staleness_limit: Optional[int] = None
    #: Checkpoint every agent's state every this many rounds (for warm
    #: restarts after a crash); 0 disables checkpointing.
    checkpoint_interval: int = 25
    #: Bus-level envelope TTL in rounds (None = messages never expire).
    message_ttl: Optional[int] = None
    #: Suppress duplicate deliveries of the same envelope sequence number.
    dedup: bool = True

    def __post_init__(self) -> None:
        """Reject inconsistent knobs at construction (REP008)."""
        if self.rounds < 1:
            raise DistributedError(
                f"rounds must be >= 1, got {self.rounds!r}"
            )
        if self.delay < 0 or self.jitter < 0:
            raise DistributedError(
                f"delay/jitter must be >= 0, got "
                f"{self.delay!r}/{self.jitter!r}"
            )
        if not 0.0 <= self.loss_probability <= 1.0:
            raise DistributedError(
                f"loss_probability must be in [0, 1], "
                f"got {self.loss_probability!r}"
            )
        if self.seed < 0:
            # default_rng rejects negative seeds, but only when the bus
            # first draws — mid-run, not at construction.
            raise DistributedError(f"seed must be >= 0, got {self.seed!r}")
        if self.initial_resource_price <= 0.0:
            raise DistributedError(
                f"initial_resource_price must be positive, "
                f"got {self.initial_resource_price!r}"
            )
        if self.initial_path_price < 0.0:
            raise DistributedError(
                f"initial_path_price must be >= 0, "
                f"got {self.initial_path_price!r}"
            )
        if self.initial_gamma <= 0.0:
            raise DistributedError(
                f"initial_gamma must be positive, got {self.initial_gamma!r}"
            )
        if self.max_gamma < self.initial_gamma:
            raise DistributedError(
                f"max_gamma {self.max_gamma!r} below initial_gamma "
                f"{self.initial_gamma!r}"
            )
        if self.max_latency_factor < 1.0:
            raise DistributedError(
                f"max_latency_factor must be >= 1, "
                f"got {self.max_latency_factor!r}"
            )
        if self.staleness_limit is not None and self.staleness_limit < 1:
            raise DistributedError(
                f"staleness_limit must be >= 1, got {self.staleness_limit!r}"
            )
        if self.checkpoint_interval < 0:
            raise DistributedError(
                f"checkpoint_interval must be >= 0, "
                f"got {self.checkpoint_interval!r}"
            )
        if self.message_ttl is not None and self.message_ttl < 1:
            raise DistributedError(
                f"message_ttl must be >= 1, got {self.message_ttl!r}"
            )


class DistributedLLARuntime:
    """Message-passing execution of LLA over a simulated control network."""

    def __init__(self, taskset: TaskSet,
                 config: Optional[DistributedConfig] = None,
                 on_round: Optional[Callable[[IterationRecord], None]] = None,
                 telemetry: Optional[Telemetry] = None):
        self.taskset = taskset
        self.config = config or DistributedConfig()
        self.on_round = on_round
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # Compile the task set once; the omniscient observer and the
        # per-resource agent views read the arrays instead of re-walking
        # the object graph every round.  Non-closed-form models (exotic
        # share functions or utilities) fall back to traversal.
        self.structure: Optional[TaskSetStructure]
        try:
            self.structure = compile_structure(
                taskset, max_latency_factor=self.config.max_latency_factor
            )
        except (OptimizationError, ModelError):
            self.structure = None
        # The fingerprint only changes when the model does (capacity
        # shocks); cache it instead of re-hashing at every checkpoint.
        self._fingerprint = taskset_fingerprint(taskset)
        # Trace timestamps follow the protocol round so identical runs
        # write identical traces (unless the caller injected a clock).
        tracer = self.telemetry.tracer
        if tracer.enabled and not tracer.clock_injected:
            tracer.set_clock(lambda: float(self.round))
        cfg = self.config
        self.bus = MessageBus(
            delay=cfg.delay,
            jitter=cfg.jitter,
            loss_probability=cfg.loss_probability,
            seed=cfg.seed,
            telemetry=telemetry,
            message_ttl=cfg.message_ttl,
            dedup=cfg.dedup,
        )

        def gamma_factory() -> LocalGamma:
            return LocalGamma(
                initial=cfg.initial_gamma,
                max_gamma=cfg.max_gamma,
                adapt=cfg.adaptive,
            )

        self.controllers: Dict[str, TaskControllerAgent] = {
            task.name: TaskControllerAgent(
                taskset,
                task,
                self.bus,
                initial_resource_price=cfg.initial_resource_price,
                initial_path_price=cfg.initial_path_price,
                gamma_factory=gamma_factory,
                max_latency_factor=cfg.max_latency_factor,
                staleness_limit=cfg.staleness_limit,
            )
            for task in taskset.tasks
        }
        agent_views = self._resource_agent_views()
        self.resources: Dict[str, ResourceAgent] = {
            rname: ResourceAgent(
                taskset,
                rname,
                self.bus,
                initial_price=cfg.initial_resource_price,
                gamma=gamma_factory(),
                hosted=agent_views[rname][0] if agent_views else None,
                controllers=agent_views[rname][1] if agent_views else None,
            )
            for rname in taskset.resources
        }
        self.bus.register(*self.agent_names())
        self.checkpoints = CheckpointStore()
        self.injector = (
            FaultInjector(cfg.fault_plan, self)
            if cfg.fault_plan is not None and not cfg.fault_plan.is_empty()
            else None
        )
        self.activation = cfg.activation or EveryRound()
        self.round = 0
        self.history: List[IterationRecord] = []
        self.crash_dropped = 0
        # Root causal span of the current run() (None outside a traced run).
        self._run_span: Optional[SpanContext] = None
        # Price-staleness tracking: the round each controller last received
        # a price message, for the dist.price_staleness_max gauge.
        self._last_price_round: Dict[str, int] = {
            agent.name: 0 for agent in self.controllers.values()
        }

    def _resource_agent_views(
        self,
    ) -> Dict[str, Tuple[List[str], List[str]]]:
        """Per-resource (hosted subtasks, controller names) from the
        compiled structure in one pass over the subtask arrays — replaces
        the O(R x S) per-agent object-graph scans.  Empty when the task
        set did not compile (agents then derive their own views)."""
        if self.structure is None:
            return {}
        s = self.structure
        hosted: Dict[str, List[str]] = {r: [] for r in s.resource_names}
        owners: Dict[str, set] = {r: set() for r in s.resource_names}
        for i, sub_name in enumerate(s.subtask_names):
            rname = s.resource_names[int(s.sub_resource[i])]
            hosted[rname].append(sub_name)
            owners[rname].add(s.task_names[int(s.sub_task_ids[i])])
        return {
            rname: (hosted[rname], sorted(owners[rname]))
            for rname in s.resource_names
        }

    # -- agent directory --------------------------------------------------------

    def agent_names(self):
        """Every agent name, controllers then resources."""
        return (
            [agent.name for agent in self.controllers.values()]
            + [agent.name for agent in self.resources.values()]
        )

    def agent(self, name: str):
        """Resolve ``"controller:T"``/``"resource:r"`` to its agent."""
        kind, _, subject = name.partition(":")
        if kind == "controller" and subject in self.controllers:
            return self.controllers[subject]
        if kind == "resource" and subject in self.resources:
            return self.resources[subject]
        raise DistributedError(
            f"unknown agent {name!r}; known agents: "
            f"{sorted(self.agent_names())}"
        )

    # -- faults ------------------------------------------------------------------

    def crash_agent(self, name: str) -> None:
        """Take an agent down: it stops receiving, acting and sending;
        messages addressed to it are dropped until it restarts."""
        agent = self.agent(name)
        if agent.crashed:
            raise DistributedError(f"agent {name!r} is already crashed")
        agent.crashed = True
        logger.warning("agent crash: %s (round %d)", name, self.round)
        if self.telemetry.enabled:
            self.telemetry.registry.counter(
                "dist.agent_crashes_total", "agent crash events"
            ).inc()
            self.telemetry.registry.gauge(
                "dist.crashed_agents", "agents currently down"
            ).inc()
            if self.telemetry.tracer.enabled:
                self.telemetry.tracer.emit(
                    "agent_crash", agent=name, round=self.round
                )

    def restart_agent(self, name: str, warm: bool = True) -> None:
        """Bring a crashed agent back, warm (from its last checkpoint,
        when one exists) or cold (from the configured initials)."""
        agent = self.agent(name)
        if not agent.crashed:
            raise DistributedError(f"agent {name!r} is not crashed")
        checkpoint = None
        if warm:
            # A checkpoint stamped for a different task set (capacity
            # shocks, churn) is not a head start — demand the current
            # fingerprint and fall back to a cold restart on mismatch.
            mismatches_before = self.checkpoints.mismatches
            checkpoint = self.checkpoints.load(
                name, fingerprint=self._fingerprint
            )
            if checkpoint is None and \
                    self.checkpoints.mismatches > mismatches_before:
                logger.warning(
                    "agent %s: checkpoint is for a different task set; "
                    "restarting cold (round %d)", name, self.round,
                )
                if self.telemetry.enabled:
                    self.telemetry.registry.counter(
                        "dist.checkpoint_mismatches_total",
                        "warm restarts demoted to cold by a task-set "
                        "fingerprint mismatch",
                    ).inc()
                    if self.telemetry.tracer.enabled:
                        self.telemetry.tracer.emit(
                            "checkpoint_mismatch", agent=name,
                            round=self.round,
                        )
        if checkpoint is not None:
            agent.restore_checkpoint(checkpoint.state)
        else:
            agent.cold_restart()
        agent.crashed = False
        logger.info(
            "agent restart: %s (round %d, %s)", name, self.round,
            f"warm from round {checkpoint.round}" if checkpoint is not None
            else "cold",
        )
        if self.telemetry.enabled:
            self.telemetry.registry.counter(
                "dist.agent_restarts_total", "agent restart events"
            ).inc()
            self.telemetry.registry.gauge(
                "dist.crashed_agents", "agents currently down"
            ).dec()
            if self.telemetry.tracer.enabled:
                self.telemetry.tracer.emit(
                    "agent_restart", agent=name, round=self.round,
                    warm=checkpoint is not None,
                    checkpoint_round=(
                        checkpoint.round if checkpoint is not None else None
                    ),
                )

    def set_resource_availability(self, resource: str, value: float) -> None:
        """Apply a capacity shock: change ``B_r`` live and refresh every
        controller's allocation bounds to the new model."""
        self.taskset.set_availability(resource, value)
        self.refresh_model()
        logger.warning("capacity shock: %s availability -> %.6g (round %d)",
                       resource, value, self.round)
        if self.telemetry.tracer.enabled:
            self.telemetry.tracer.emit(
                "capacity_shock", resource=resource,
                availability=float(value), round=self.round,
            )

    def refresh_model(self) -> None:
        """Re-read mutable model state (availabilities, corrected share
        functions) into every controller's allocation bounds, the compiled
        structure the omniscient observer reads, and the cached checkpoint
        fingerprint."""
        for controller in self.controllers.values():
            controller.allocator.refresh_bounds()
        if self.structure is not None:
            self.structure.refresh_model()
        self._fingerprint = taskset_fingerprint(self.taskset)

    def crashed_agents(self):
        """Names of agents currently down."""
        return [
            name for name in self.agent_names() if self.agent(name).crashed
        ]

    def degraded_controllers(self):
        """Names of controllers currently in graceful degradation."""
        return [
            agent.name for agent in self.controllers.values()
            if agent.degraded
        ]

    def _checkpoint_all(self) -> None:
        fingerprint = self._fingerprint
        for name in self.agent_names():
            agent = self.agent(name)
            if not agent.crashed:
                self.checkpoints.save(name, self.round,
                                      agent.to_checkpoint(),
                                      fingerprint=fingerprint)

    # -- observation ----------------------------------------------------------

    def global_latencies(self) -> Dict[str, float]:
        """Omniscient snapshot of every controller's current latencies."""
        latencies: Dict[str, float] = {}
        for controller in self.controllers.values():
            latencies.update(controller.latencies)
        return latencies

    def _snapshot(self) -> IterationRecord:
        latencies = self.global_latencies()
        path_prices_all: Dict[PathKey, float] = {}
        for controller in self.controllers.values():
            path_prices_all.update(controller.path_prices)
        if self.structure is not None:
            s = self.structure
            obs = observe_assignment(s, latencies, tol=1e-9)
            return IterationRecord(
                iteration=self.round,
                utility=obs.utility,
                latencies=latencies,
                resource_prices={
                    r: agent.price for r, agent in self.resources.items()
                },
                path_prices=path_prices_all,
                resource_loads=dict(
                    zip(s.resource_names, obs.loads.tolist())
                ),
                congested_resources=tuple(
                    s.resource_names[i]
                    for i in np.flatnonzero(obs.cong_r)
                ),
                congested_paths=tuple(
                    s.path_keys[i] for i in np.flatnonzero(obs.cong_p)
                ),
                critical_paths=dict(zip(s.task_names, obs.crit.tolist())),
            )
        # Fallback for task sets the vectorized compiler rejects (exotic
        # share functions / utilities): walk the object graph.
        loads = self.taskset.resource_loads(latencies)  # statan: disable=REP016 -- object-graph fallback when the task set does not compile
        congested_resources = tuple(
            r for r, load in loads.items()
            if load > self.taskset.resources[r].availability + 1e-9
        )
        congested_paths: tuple = ()
        for controller in self.controllers.values():
            task = controller.task
            for i, path in enumerate(task.graph.paths):
                if (task.graph.path_latency(path, latencies)  # statan: disable=REP016 -- object-graph fallback when the task set does not compile
                        > task.critical_time + 1e-9):
                    congested_paths += (PathKey(task.name, i),)
        return IterationRecord(
            iteration=self.round,
            utility=self.taskset.total_utility(latencies),  # statan: disable=REP016 -- object-graph fallback when the task set does not compile
            latencies=latencies,
            resource_prices={
                r: agent.price for r, agent in self.resources.items()
            },
            path_prices=path_prices_all,
            resource_loads=loads,
            congested_resources=congested_resources,
            congested_paths=congested_paths,
            critical_paths={
                task.name: task.critical_path(latencies)[1]  # statan: disable=REP016 -- object-graph fallback when the task set does not compile
                for task in self.taskset.tasks
            },
        )

    # -- execution -------------------------------------------------------------

    def _act_with_span(self, agent, spans: Optional[SpanTracker],
                       round_ctx: Optional[SpanContext]) -> None:
        """Run one agent's act, wrapped in a causal span while tracing.

        The act span parents on the span of the last message that changed
        the agent's state (so price → act → latency chains link up across
        agents and rounds) and falls back to the round span before any
        message has arrived.
        """
        if spans is None:
            agent.act(self.round)
            return
        parent = agent.last_cause if agent.last_cause is not None \
            else round_ctx
        with spans.start_span("act", parent=parent, agent=agent.name,
                              round=self.round) as span:
            agent.act_context = span.context
            try:
                agent.act(self.round)
            finally:
                agent.act_context = None

    def step(self) -> IterationRecord:
        """One protocol round (controller phase, then resource phase).

        Scripted faults fire at the start of the round; crashed agents
        neither receive nor act, and their due messages are discarded.
        """
        instrumented = self.telemetry.enabled
        if instrumented:
            started = time.perf_counter()
        self.round += 1
        spans = (
            self.telemetry.spans if self.telemetry.tracer.enabled else None
        )
        round_ctx = (
            spans.open_span("round", parent=self._run_span, round=self.round)
            if spans is not None else None
        )
        if self.injector is not None:
            self.injector.apply(self.round)
        newly_degraded = []
        for controller in self.controllers.values():
            if controller.crashed:
                self.crash_dropped += self.bus.purge(controller.name)
                continue
            was_degraded = controller.degraded
            messages = self.bus.deliver(controller.name)
            controller.receive(messages)
            if instrumented and any(
                    isinstance(env.payload, PriceMessage)
                    for env in messages):
                self._last_price_round[controller.name] = self.round
            if self.activation.is_active(controller.name, self.round):
                self._act_with_span(controller, spans, round_ctx)
            if controller.degraded and not was_degraded:
                newly_degraded.append(controller)
        for agent in self.resources.values():
            if agent.crashed:
                self.crash_dropped += self.bus.purge(agent.name)
                continue
            agent.receive(self.bus.deliver(agent.name))
            if self.activation.is_active(agent.name, self.round):
                self._act_with_span(agent, spans, round_ctx)
        self.bus.advance()
        if self.config.checkpoint_interval > 0 and \
                self.round % self.config.checkpoint_interval == 0:
            self._checkpoint_all()
        record = self._snapshot()
        if spans is not None and round_ctx is not None:
            spans.end_span(round_ctx, utility=float(record.utility))
        if instrumented:
            self._observe_round(record, time.perf_counter() - started)
            self._observe_degradation(newly_degraded)
        if self.on_round is not None:
            self.on_round(record)
        return record

    def _observe_degradation(self, newly_degraded) -> None:
        registry = self.telemetry.registry
        tracer = self.telemetry.tracer
        for controller in newly_degraded:
            logger.warning(
                "controller %s degraded: newest price is %d rounds old "
                "(limit %d), freezing on last feasible assignment (round %d)",
                controller.name, controller.staleness(),
                controller.staleness_limit, self.round,
            )
            if tracer.enabled:
                tracer.emit(
                    "staleness_violation", agent=controller.name,
                    staleness=controller.staleness(),
                    limit=controller.staleness_limit, round=self.round,
                )
        degraded = self.degraded_controllers()
        if degraded:
            registry.counter(
                "dist.degraded_rounds_total",
                "controller-rounds spent in graceful degradation",
            ).inc(len(degraded))
        registry.gauge(
            "dist.degraded_controllers",
            "controllers currently running degraded",
        ).set(len(degraded))

    def _observe_round(self, record: IterationRecord,
                       duration: float) -> None:
        registry = self.telemetry.registry
        registry.counter(
            "dist.rounds_total", "protocol rounds executed").inc()
        registry.timer(
            "dist.round_seconds", "wall time per protocol round",
            max_samples=4096,
        ).observe(duration)
        registry.gauge(
            "dist.utility", "total utility at the last round").set(
                record.utility)
        staleness = max(
            (self.round - last for last in self._last_price_round.values()),
            default=0,
        )
        registry.gauge(
            "dist.price_staleness_max",
            "rounds since the most price-starved controller heard a price",
        ).set(staleness)
        if self.telemetry.tracer.enabled:
            self.telemetry.tracer.emit(
                "iteration", duration_s=duration, **encode_record(record))

    def run(self, rounds: Optional[int] = None) -> OptimizationResult:
        """Run a fixed number of rounds; returns the final global view."""
        budget = rounds or self.config.rounds
        tracer = self.telemetry.tracer
        if tracer.enabled:
            tracer.emit(
                "run_started", runtime="distributed",
                starting_round=self.round, budget=budget,
                controllers=len(self.controllers),
                resources=len(self.resources),
                delay=self.bus.delay, jitter=self.bus.jitter,
                loss_probability=self.bus.loss_probability,
                fault_plan=self.injector is not None,
                staleness_limit=self.config.staleness_limit,
            )
            self._run_span = self.telemetry.spans.open_span(
                "run", runtime="distributed", budget=budget,
            )
        debug = logger.isEnabledFor(logging.DEBUG)
        for _ in range(budget):
            record = self.step()
            if debug:
                logger.debug(
                    "round %d: utility %.6f, %d in-flight messages, "
                    "%d dropped", self.round, record.utility,
                    self.bus.pending(), self.bus.dropped,
                )
            if self.config.record_history:
                self.history.append(record)
        latencies = self.global_latencies()
        if self.structure is not None:
            final = observe_assignment(self.structure, latencies, tol=1e-2)
            converged = final.feasible()
            utility = final.utility
        else:
            converged = self.taskset.is_feasible(latencies, tol=1e-2)  # statan: disable=REP016 -- object-graph fallback when the task set does not compile
            utility = self.taskset.total_utility(latencies)  # statan: disable=REP016 -- object-graph fallback when the task set does not compile
        if not converged:
            logger.warning(
                "distributed run ended infeasible after %d rounds "
                "(utility %.6f, %d messages dropped)",
                self.round, utility, self.bus.dropped,
            )
        if self._run_span is not None:
            self.telemetry.spans.end_span(
                self._run_span, converged=bool(converged),
            )
            self._run_span = None
        if tracer.enabled:
            tracer.emit(
                "run_finished", runtime="distributed", converged=converged,
                iterations=self.round, utility=float(utility),
                sent=self.bus.sent, delivered=self.bus.delivered,
                dropped=self.bus.dropped, expired=self.bus.expired,
                deduplicated=self.bus.deduplicated,
                crash_dropped=self.crash_dropped,
            )
            if self.telemetry.registry.enabled:
                tracer.emit("metrics_snapshot",
                            metrics=self.telemetry.registry.snapshot())
        return OptimizationResult(
            converged=converged,
            iterations=self.round,
            latencies=latencies,
            utility=utility,
            resource_prices={
                r: agent.price for r, agent in self.resources.items()
            },
            path_prices={
                key: price
                for controller in self.controllers.values()
                for key, price in controller.path_prices.items()
            },
            history=self.history,
        )
