"""The distributed LLA runtime: agents + bus + round loop.

One *round* is one iteration of the paper's distributed algorithm:

1. controllers collect due price messages, update path prices, allocate
   latencies and send them to the resources (Latency Allocation box);
2. resources collect due latency messages, update their prices and send
   them (with congestion bits) back to the controllers (Resource Price
   Computation box).

With a zero-delay, lossless bus and fixed step sizes this sequence is
bit-for-bit the in-process :class:`~repro.core.optimizer.LLAOptimizer`
iteration; with delays, jitter, drops or partitions it shows how the
protocol degrades (it keeps converging under moderate loss — prices simply
move on stale information, which the dual-gradient iteration tolerates).

Utility/feasibility are measured by an omniscient observer (this module) —
the agents themselves never see global state.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.state import IterationRecord, OptimizationResult, PathKey
from repro.distributed.activation import ActivationSchedule, EveryRound
from repro.distributed.agents import (
    LocalGamma,
    ResourceAgent,
    TaskControllerAgent,
)
from repro.distributed.messages import PriceMessage
from repro.distributed.network import MessageBus
from repro.model.task import TaskSet
from repro.telemetry import NULL_TELEMETRY, Telemetry, encode_record

__all__ = ["DistributedConfig", "DistributedLLARuntime"]

logger = logging.getLogger(__name__)


@dataclass
class DistributedConfig:
    """Runtime tunables (bus faults + protocol constants)."""

    rounds: int = 500
    delay: int = 0
    jitter: int = 0
    loss_probability: float = 0.0
    seed: int = 0
    initial_resource_price: float = 1.0
    initial_path_price: float = 0.0
    initial_gamma: float = 1.0
    adaptive: bool = True
    max_gamma: float = 8.0
    max_latency_factor: float = 1.0
    record_history: bool = True
    #: Which agents act each round; None = the synchronous ideal.
    activation: Optional[ActivationSchedule] = None


class DistributedLLARuntime:
    """Message-passing execution of LLA over a simulated control network."""

    def __init__(self, taskset: TaskSet,
                 config: Optional[DistributedConfig] = None,
                 on_round: Optional[Callable[[IterationRecord], None]] = None,
                 telemetry: Optional[Telemetry] = None):
        self.taskset = taskset
        self.config = config or DistributedConfig()
        self.on_round = on_round
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        cfg = self.config
        self.bus = MessageBus(
            delay=cfg.delay,
            jitter=cfg.jitter,
            loss_probability=cfg.loss_probability,
            seed=cfg.seed,
            telemetry=telemetry,
        )

        def gamma_factory() -> LocalGamma:
            return LocalGamma(
                initial=cfg.initial_gamma,
                max_gamma=cfg.max_gamma,
                adapt=cfg.adaptive,
            )

        self.controllers: Dict[str, TaskControllerAgent] = {
            task.name: TaskControllerAgent(
                taskset,
                task,
                self.bus,
                initial_resource_price=cfg.initial_resource_price,
                initial_path_price=cfg.initial_path_price,
                gamma_factory=gamma_factory,
                max_latency_factor=cfg.max_latency_factor,
            )
            for task in taskset.tasks
        }
        self.resources: Dict[str, ResourceAgent] = {
            rname: ResourceAgent(
                taskset,
                rname,
                self.bus,
                initial_price=cfg.initial_resource_price,
                gamma=gamma_factory(),
            )
            for rname in taskset.resources
        }
        self.activation = cfg.activation or EveryRound()
        self.round = 0
        self.history: List[IterationRecord] = []
        # Price-staleness tracking: the round each controller last received
        # a price message, for the dist.price_staleness_max gauge.
        self._last_price_round: Dict[str, int] = {
            agent.name: 0 for agent in self.controllers.values()
        }

    # -- observation ----------------------------------------------------------

    def global_latencies(self) -> Dict[str, float]:
        """Omniscient snapshot of every controller's current latencies."""
        latencies: Dict[str, float] = {}
        for controller in self.controllers.values():
            latencies.update(controller.latencies)
        return latencies

    def _snapshot(self) -> IterationRecord:
        latencies = self.global_latencies()
        loads = self.taskset.resource_loads(latencies)
        congested_resources = tuple(
            r for r, load in loads.items()
            if load > self.taskset.resources[r].availability + 1e-9
        )
        congested_paths: tuple = ()
        path_prices: Dict[PathKey, float] = {}
        for controller in self.controllers.values():
            path_prices.update(controller.path_prices)
            task = controller.task
            for i, path in enumerate(task.graph.paths):
                if task.graph.path_latency(path, latencies) > \
                        task.critical_time + 1e-9:
                    congested_paths += (PathKey(task.name, i),)
        return IterationRecord(
            iteration=self.round,
            utility=self.taskset.total_utility(latencies),
            latencies=latencies,
            resource_prices={
                r: agent.price for r, agent in self.resources.items()
            },
            path_prices=path_prices,
            resource_loads=loads,
            congested_resources=congested_resources,
            congested_paths=congested_paths,
            critical_paths={
                task.name: task.critical_path(latencies)[1]
                for task in self.taskset.tasks
            },
        )

    # -- execution -------------------------------------------------------------

    def step(self) -> IterationRecord:
        """One protocol round (controller phase, then resource phase)."""
        instrumented = self.telemetry.enabled
        if instrumented:
            started = time.perf_counter()
        self.round += 1
        for controller in self.controllers.values():
            messages = self.bus.deliver(controller.name)
            controller.receive(messages)
            if instrumented and any(
                    isinstance(env.payload, PriceMessage)
                    for env in messages):
                self._last_price_round[controller.name] = self.round
            if self.activation.is_active(controller.name, self.round):
                controller.act(self.round)
        for agent in self.resources.values():
            agent.receive(self.bus.deliver(agent.name))
            if self.activation.is_active(agent.name, self.round):
                agent.act(self.round)
        self.bus.advance()
        record = self._snapshot()
        if instrumented:
            self._observe_round(record, time.perf_counter() - started)
        if self.on_round is not None:
            self.on_round(record)
        return record

    def _observe_round(self, record: IterationRecord,
                       duration: float) -> None:
        registry = self.telemetry.registry
        registry.counter(
            "dist.rounds_total", "protocol rounds executed").inc()
        registry.timer(
            "dist.round_seconds", "wall time per protocol round",
            max_samples=4096,
        ).observe(duration)
        registry.gauge(
            "dist.utility", "total utility at the last round").set(
                record.utility)
        staleness = max(
            (self.round - last for last in self._last_price_round.values()),
            default=0,
        )
        registry.gauge(
            "dist.price_staleness_max",
            "rounds since the most price-starved controller heard a price",
        ).set(staleness)
        if self.telemetry.tracer.enabled:
            self.telemetry.tracer.emit(
                "iteration", duration_s=duration, **encode_record(record))

    def run(self, rounds: Optional[int] = None) -> OptimizationResult:
        """Run a fixed number of rounds; returns the final global view."""
        budget = rounds or self.config.rounds
        tracer = self.telemetry.tracer
        if tracer.enabled:
            tracer.emit(
                "run_started", runtime="distributed",
                starting_round=self.round, budget=budget,
                controllers=len(self.controllers),
                resources=len(self.resources),
                delay=self.bus.delay, jitter=self.bus.jitter,
                loss_probability=self.bus.loss_probability,
            )
        debug = logger.isEnabledFor(logging.DEBUG)
        for _ in range(budget):
            record = self.step()
            if debug:
                logger.debug(
                    "round %d: utility %.6f, %d in-flight messages, "
                    "%d dropped", self.round, record.utility,
                    self.bus.pending(), self.bus.dropped,
                )
            if self.config.record_history:
                self.history.append(record)
        latencies = self.global_latencies()
        converged = self.taskset.is_feasible(latencies, tol=1e-2)
        utility = self.taskset.total_utility(latencies)
        if not converged:
            logger.warning(
                "distributed run ended infeasible after %d rounds "
                "(utility %.6f, %d messages dropped)",
                self.round, utility, self.bus.dropped,
            )
        if tracer.enabled:
            tracer.emit(
                "run_finished", runtime="distributed", converged=converged,
                iterations=self.round, utility=float(utility),
                sent=self.bus.sent, delivered=self.bus.delivered,
                dropped=self.bus.dropped,
            )
            if self.telemetry.registry.enabled:
                tracer.emit("metrics_snapshot",
                            metrics=self.telemetry.registry.snapshot())
        return OptimizationResult(
            converged=converged,
            iterations=self.round,
            latencies=latencies,
            utility=utility,
            resource_prices={
                r: agent.price for r, agent in self.resources.items()
            },
            path_prices={
                key: price
                for controller in self.controllers.values()
                for key, price in controller.path_prices.items()
            },
            history=self.history,
        )
