"""Distributed closed loop: message-passing LLA driving a live system.

The in-process closed loop (:mod:`repro.sim.closedloop`) couples the
centralized optimizer to the simulator; this module completes the paper's
architecture by coupling the *distributed* runtime instead — per-task
controllers and per-resource price agents exchanging messages over a
(faultable) control network, enacting shares on the simulated system and
correcting the model from its measurements.

Per epoch:

1. the system executes the workload for one sampling window;
2. each subtask's observed latencies update its additive model error
   (§6.3) — in deployment each task controller corrects its own subtasks;
   the corrected share functions live on the shared task set, and every
   controller's allocator refreshes its cached bounds;
3. the control plane runs ``rounds_per_epoch`` protocol rounds (through
   whatever loss/delay/asynchrony the bus is configured with);
4. the controllers' current latencies are converted to shares through the
   corrected model and enacted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.error_correction import ErrorCorrector
from repro.distributed.runtime import DistributedConfig, DistributedLLARuntime
from repro.errors import SimulationError
from repro.model.share import CorrectedShare
from repro.model.task import TaskSet
from repro.sim.system import SimulatedSystem

__all__ = ["DistributedEpochRecord", "DistributedClosedLoop"]


@dataclass
class DistributedEpochRecord:
    """Observable state at the end of one distributed control epoch."""

    epoch: int
    time: float
    correction_enabled: bool
    shares: Dict[str, float]
    smoothed_errors: Dict[str, float]
    rounds_completed: int
    messages_sent: int
    messages_dropped: int
    utility: float = 0.0


class DistributedClosedLoop:
    """Couples :class:`DistributedLLARuntime` to a simulated system."""

    def __init__(
        self,
        taskset: TaskSet,
        window: float = 2000.0,
        rounds_per_epoch: int = 400,
        model: str = "gps",
        seed: int = 0,
        runtime_config: Optional[DistributedConfig] = None,
        corrector: Optional[ErrorCorrector] = None,
        warmup_rounds: int = 3000,
    ):
        if window <= 0.0:
            raise SimulationError(f"window must be positive, got {window!r}")
        self.taskset = taskset
        self.window = float(window)
        self.rounds_per_epoch = int(rounds_per_epoch)
        self.correction_enabled = False
        self.corrector = corrector or ErrorCorrector(taskset)
        self.runtime = DistributedLLARuntime(
            taskset,
            runtime_config or DistributedConfig(record_history=False),
        )
        # Converge the control plane before the system starts.
        for _ in range(warmup_rounds):
            self.runtime.step()
        self._base_model = {
            name: taskset.share_function(name)
            for name in taskset.subtask_names
        }
        self.system = SimulatedSystem(
            taskset, self._current_shares(), model=model, seed=seed,
            structure=self.runtime.structure,
        )
        self.epoch = 0
        self.history: List[DistributedEpochRecord] = []

    # -- helpers -----------------------------------------------------------------

    def _current_shares(self) -> Dict[str, float]:
        latencies = self.runtime.global_latencies()
        return {
            name: self.taskset.share_function(name).share(lat)
            for name, lat in latencies.items()
        }

    def _base_prediction(self, subtask: str) -> float:
        share = self.system.current_share(subtask)
        fn = self._base_model[subtask]
        if isinstance(fn, CorrectedShare):
            fn = fn.base
        return fn.latency_for_share(share)

    def enable_correction(self) -> None:
        self.correction_enabled = True

    # -- the loop -------------------------------------------------------------------

    def run_epoch(self) -> DistributedEpochRecord:
        self.epoch += 1
        sent_before = self.runtime.bus.sent
        dropped_before = self.runtime.bus.dropped

        self.system.run_for(self.window)

        if self.correction_enabled:
            for name in self.taskset.subtask_names:
                samples = self.system.recorder.drain_jobs(name)
                if not samples:
                    continue
                predicted = self._base_prediction(name)
                self.corrector.observe_batch(name, predicted, samples)
            self.corrector.apply_all()
            # Propagate the corrected share model everywhere it is cached:
            # each controller's allocation bounds and the runtime's
            # compiled structure (its omniscient observer would otherwise
            # keep scoring against the stale error terms).
            self.runtime.refresh_model()
        else:
            for name in self.taskset.subtask_names:
                self.system.recorder.drain_jobs(name)

        for _ in range(self.rounds_per_epoch):
            self.runtime.step()

        shares = self._current_shares()
        self.system.enact_shares(shares)
        latencies = self.runtime.global_latencies()
        record = DistributedEpochRecord(
            epoch=self.epoch,
            time=self.system.engine.now,
            correction_enabled=self.correction_enabled,
            shares=shares,
            smoothed_errors={
                name: self.corrector.error(name)
                for name in self.taskset.subtask_names
            },
            rounds_completed=self.runtime.round,
            messages_sent=self.runtime.bus.sent - sent_before,
            messages_dropped=self.runtime.bus.dropped - dropped_before,
            utility=self.taskset.total_utility(latencies),  # statan: disable=REP016 -- per-epoch summary, not per-round
        )
        self.history.append(record)
        return record

    def run_epochs(self, count: int) -> List[DistributedEpochRecord]:
        return [self.run_epoch() for _ in range(count)]

    def share_trace(self, subtask: str) -> List[float]:
        return [rec.shares[subtask] for rec in self.history]
