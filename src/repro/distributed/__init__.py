"""Distributed (message-passing) execution of LLA (Section 4.1).

Task controllers and resource agents exchange prices and latencies over a
simulated control network with configurable delay, jitter, loss and
partitions, plus a chaos subsystem (:mod:`repro.distributed.faults`)
scripting crashes/restarts, loss bursts, duplication/reordering and
capacity shocks, with checkpoint-based warm recovery and staleness-bound
graceful degradation.
"""

from repro.distributed.activation import (
    ActivationSchedule,
    EveryRound,
    PeriodicActivation,
    RandomActivation,
)
from repro.distributed.checkpoint import Checkpoint, CheckpointStore
from repro.distributed.faults import (
    CapacityShock,
    CheckpointCorruption,
    CheckpointOutage,
    ChurnStorm,
    CrashWindow,
    DuplicationWindow,
    FaultInjector,
    FaultPlan,
    LoopStall,
    LossBurst,
    PartitionWindow,
    ReorderWindow,
)
from repro.distributed.closedloop import (
    DistributedClosedLoop,
    DistributedEpochRecord,
)
from repro.distributed.agents import (
    LocalGamma,
    ResourceAgent,
    TaskControllerAgent,
)
from repro.distributed.messages import Envelope, LatencyMessage, PriceMessage
from repro.distributed.network import MessageBus
from repro.distributed.runtime import DistributedConfig, DistributedLLARuntime

__all__ = [
    "DistributedLLARuntime",
    "DistributedConfig",
    "MessageBus",
    "ResourceAgent",
    "TaskControllerAgent",
    "LocalGamma",
    "Envelope",
    "PriceMessage",
    "LatencyMessage",
    "ActivationSchedule",
    "EveryRound",
    "PeriodicActivation",
    "RandomActivation",
    "DistributedClosedLoop",
    "DistributedEpochRecord",
    "FaultPlan",
    "CheckpointCorruption",
    "CheckpointOutage",
    "ChurnStorm",
    "LoopStall",
    "FaultInjector",
    "CrashWindow",
    "PartitionWindow",
    "LossBurst",
    "DuplicationWindow",
    "ReorderWindow",
    "CapacityShock",
    "Checkpoint",
    "CheckpointStore",
]
