"""Agent activation schedules: asynchronous execution of LLA.

The synchronous round model (every controller, then every resource, every
round) is an idealization.  Real deployments are asynchronous: agents run
on their own timers, at different speeds, occasionally late.  Dual
gradient methods are known to tolerate this — prices simply move on stale
information — and Low & Lapsley's framework (which the paper builds on)
proves convergence for bounded asynchrony.

An :class:`ActivationSchedule` decides, per round, which agents act.
Skipped agents neither recompute nor send; their last messages stay in
force at the receivers.

* :class:`EveryRound` — the synchronous ideal;
* :class:`PeriodicActivation` — each agent acts every ``period`` rounds,
  with per-agent phase offsets (e.g. slow controllers vs fast resources);
* :class:`RandomActivation` — each agent independently acts with
  probability ``p`` per round (bounded asynchrony in expectation).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import DistributedError

__all__ = [
    "ActivationSchedule",
    "EveryRound",
    "PeriodicActivation",
    "RandomActivation",
]


class ActivationSchedule:
    """Decides which agents act in a given round."""

    def is_active(self, agent: str, round_number: int) -> bool:
        raise NotImplementedError


class EveryRound(ActivationSchedule):
    """The synchronous ideal: every agent acts every round."""

    def is_active(self, agent: str, round_number: int) -> bool:
        return True


class PeriodicActivation(ActivationSchedule):
    """Each agent acts every ``period`` rounds.

    ``periods`` maps agent names (``"controller:T1"``, ``"resource:r0"``)
    to their individual periods; unlisted agents use ``default_period``.
    Phases are derived from the agent name so distinct agents desynchronize
    deterministically.
    """

    def __init__(self, default_period: int = 1,
                 periods: Optional[Dict[str, int]] = None):
        if default_period < 1:
            raise DistributedError(
                f"default_period must be >= 1, got {default_period!r}"
            )
        self.default_period = int(default_period)
        self.periods = dict(periods or {})
        for agent, period in self.periods.items():
            if period < 1:
                raise DistributedError(
                    f"period for {agent!r} must be >= 1, got {period!r}"
                )

    def is_active(self, agent: str, round_number: int) -> bool:
        period = self.periods.get(agent, self.default_period)
        phase = hash(agent) % period
        return round_number % period == phase


class RandomActivation(ActivationSchedule):
    """Each agent independently acts with probability ``p`` per round."""

    def __init__(self, probability: float = 0.5, seed: int = 0):
        if not 0.0 < probability <= 1.0:
            raise DistributedError(
                f"probability must be in (0, 1], got {probability!r}"
            )
        self.probability = float(probability)
        self._rng = np.random.default_rng(seed)
        # Cache decisions so repeated queries within a round agree.
        self._round: int = -1
        self._decisions: Dict[str, bool] = {}

    def is_active(self, agent: str, round_number: int) -> bool:
        if round_number != self._round:
            self._round = round_number
            self._decisions = {}
        if agent not in self._decisions:
            self._decisions[agent] = bool(
                self._rng.random() < self.probability
            )
        return self._decisions[agent]
