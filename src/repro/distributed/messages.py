"""Message types exchanged by the distributed LLA agents (Section 4.1).

The protocol is exactly the paper's:

* each **resource** computes a price and sends it to the controllers of
  tasks that have subtasks executing at the resource
  (:class:`PriceMessage`, which also carries the resource's congestion bit
  so controllers can apply the adaptive step-size heuristic to the paths
  traversing a congested resource);
* each **task controller** computes new latencies and sends each subtask's
  latency to the resource where that subtask executes
  (:class:`LatencyMessage`).

Messages are immutable; the bus owns delivery timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.telemetry.spans import SpanContext

__all__ = ["PriceMessage", "LatencyMessage", "Envelope", "Payload"]


@dataclass(frozen=True)
class PriceMessage:
    """Resource → controller: the resource's current price ``μ_r``.

    ``congested`` carries the resource's local congestion observation
    (share sum above availability), which controllers use to double the
    step sizes of paths traversing the resource (Section 5.2's heuristic).
    """

    resource: str
    price: float
    congested: bool
    iteration: int


@dataclass(frozen=True)
class LatencyMessage:
    """Controller → resource: one subtask's newly computed latency."""

    task: str
    subtask: str
    latency: float
    iteration: int


Payload = Union[PriceMessage, LatencyMessage]


@dataclass(frozen=True)
class Envelope:
    """A payload in flight: sender, receiver and delivery round.

    ``seq`` is a bus-unique sequence number shared by every copy of the
    same logical message (a duplicated/replayed message carries its
    original's ``seq``), which is what delivery-time deduplication keys
    on.  ``ttl`` bounds the message's deliverable age in rounds (``None``
    = never expires).

    ``span`` is the message's causal identity while in flight: the bus
    opens it at ``send`` (parented on the sender's current act span) and
    closes it at delivery/expiry, and receivers propagate it into the
    spans of the work the message causes.  ``None`` when tracing is off.
    """

    sender: str
    receiver: str
    payload: Payload
    send_round: int
    deliver_round: int
    seq: int = 0
    ttl: Optional[int] = None
    span: Optional[SpanContext] = None
