"""Agent checkpointing for crash/restart recovery.

A restarted agent has two options (§4.4's "running continuously" mode
meets fault tolerance):

* **warm restart** — resume from the last checkpointed dual state (prices,
  step sizes, last latencies).  Dual-gradient iterations are
  self-correcting, so a slightly stale checkpoint merely costs a few
  rounds of re-convergence;
* **cold restart** — fall back to the configured initial prices, exactly
  as if the agent had just been deployed.

Warm restarts are only sound for the *same problem*: prices saved for a
different task set (a task arrived or left, a critical time moved, a
share model was retuned) are not a head start, they are garbage dressed
as state.  Each save is therefore stamped with the canonical task-set
fingerprint (:func:`~repro.model.fingerprint.taskset_fingerprint`) and
:meth:`CheckpointStore.load` rejects snapshots whose stamp does not match
the fingerprint the caller expects — the caller then falls back to a cold
restart and the mismatch is counted for telemetry.

The store is deliberately simple: a versioned in-memory snapshot per
agent.  Snapshots are deep-copied on both save and load so a restored
agent can never alias live state, and each save records the round it was
taken at so restart telemetry can report checkpoint age.

Pass ``directory`` to additionally persist each agent's latest snapshot
as a JSON file (written atomically: temp file + rename), surviving
process restarts.  Durability cuts both ways — a file on disk can be
truncated by a crash mid-write elsewhere, corrupted by the storage
layer, or hand-edited — so :meth:`CheckpointStore.load` treats an
unreadable or malformed file exactly like a fingerprint mismatch: it
counts the event in :attr:`corruptions` and returns ``None``, demoting
the caller to a cold restart.  A corrupt checkpoint must never be able
to crash the recovery path whose job is to survive corruption.
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import DistributedError

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class Checkpoint:
    """One agent snapshot: the round it was taken at, opaque state, and
    the fingerprint of the task set the state was computed for (``None``
    only for callers that opted out of stamping)."""

    agent: str
    round: int
    state: Dict[str, Any]
    fingerprint: Optional[str] = None


class CheckpointStore:
    """Keeps the most recent :class:`Checkpoint` per agent, optionally
    mirrored to JSON files under ``directory``."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self._checkpoints: Dict[str, Checkpoint] = {}
        self.directory = directory
        self.saves = 0
        self.loads = 0
        self.mismatches = 0
        self.corruptions = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def path_for(self, agent: str) -> Optional[str]:
        """The on-disk path for ``agent``'s snapshot (``None`` when the
        store is memory-only)."""
        if self.directory is None:
            return None
        safe = "".join(c if c.isalnum() or c in "-_." else "_"
                       for c in agent)
        return os.path.join(self.directory, f"{safe}.ckpt.json")

    def save(self, agent: str, round_number: int, state: Dict[str, Any],
             fingerprint: Optional[str] = None) -> Checkpoint:
        """Snapshot ``state`` for ``agent`` (replaces any older snapshot).

        ``fingerprint`` should be the task-set fingerprint the state was
        computed under; unstamped snapshots can never satisfy a stamped
        load."""
        if round_number < 0:
            raise DistributedError(
                f"checkpoint round must be >= 0, got {round_number!r}"
            )
        checkpoint = Checkpoint(
            agent=agent, round=round_number, state=copy.deepcopy(state),
            fingerprint=fingerprint,
        )
        path = self.path_for(agent)
        if path is not None:
            self._write_file(path, checkpoint)
        self._checkpoints[agent] = checkpoint
        self.saves += 1
        return checkpoint

    def _write_file(self, path: str, checkpoint: Checkpoint) -> None:
        """Atomically persist ``checkpoint`` (serialize-then-rename, so a
        crash mid-write leaves the previous file intact)."""
        try:
            payload = json.dumps({
                "agent": checkpoint.agent,
                "round": checkpoint.round,
                "state": checkpoint.state,
                "fingerprint": checkpoint.fingerprint,
            })
        except (TypeError, ValueError) as exc:
            raise DistributedError(
                f"checkpoint state for {checkpoint.agent!r} is not "
                f"JSON-serializable: {exc}"
            ) from exc
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".ckpt-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                # Best-effort temp cleanup on a failed write; the
                # original error is re-raised below.
                pass
            raise DistributedError(
                f"cannot persist checkpoint for {checkpoint.agent!r} "
                f"to {path!r}: {exc}"
            ) from exc

    def _read_file(self, agent: str) -> Optional[Checkpoint]:
        """Read ``agent``'s snapshot from disk; a corrupted, truncated,
        or malformed file is *counted* and demoted to ``None`` (cold
        restart), never raised."""
        path = self.path_for(agent)
        if path is None:
            return None
        try:
            with open(path, encoding="utf-8") as handle:
                raw = json.load(handle)
            state = raw["state"]
            fingerprint = raw["fingerprint"]
            if not isinstance(state, dict) or \
                    not isinstance(fingerprint, (str, type(None))):
                raise ValueError("malformed checkpoint payload")
            return Checkpoint(
                agent=str(raw["agent"]), round=int(raw["round"]),
                state=state, fingerprint=fingerprint,
            )
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # The whole point of the recovery path: a corrupt checkpoint
            # demotes to a counted cold restart instead of crashing the
            # restart it should enable.
            self.corruptions += 1
            return None

    def load(self, agent: str,
             fingerprint: Optional[str] = None) -> Optional[Checkpoint]:
        """The latest snapshot for ``agent`` (state deep-copied), or
        ``None`` when the agent has never been checkpointed.  A store
        with a ``directory`` falls back to the on-disk file when memory
        misses (e.g. after a process restart); a corrupted or truncated
        file is counted in :attr:`corruptions` and demotes to ``None``.

        When ``fingerprint`` is given, a snapshot stamped with a
        *different* fingerprint — including an unstamped one, which cannot
        be proven compatible — is rejected: the method returns ``None``
        and increments :attr:`mismatches`, and the caller should restart
        cold.  ``fingerprint=None`` skips the check (legacy callers that
        manage problem identity themselves)."""
        checkpoint = self._checkpoints.get(agent)
        if checkpoint is None:
            checkpoint = self._read_file(agent)
        if checkpoint is None:
            return None
        if fingerprint is not None and checkpoint.fingerprint != fingerprint:
            self.mismatches += 1
            return None
        self.loads += 1
        return Checkpoint(
            agent=checkpoint.agent,
            round=checkpoint.round,
            state=copy.deepcopy(checkpoint.state),
            fingerprint=checkpoint.fingerprint,
        )

    def has(self, agent: str) -> bool:
        return agent in self._checkpoints

    def drop(self, agent: str) -> None:
        self._checkpoints.pop(agent, None)
        path = self.path_for(agent)
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                # Dropping an agent that was never persisted (or whose
                # file is already gone) is fine.
                pass

    def clear(self) -> None:
        for agent in list(self._checkpoints):
            self.drop(agent)
        self._checkpoints.clear()

    def __len__(self) -> int:
        return len(self._checkpoints)
