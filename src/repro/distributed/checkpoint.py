"""Agent checkpointing for crash/restart recovery.

A restarted agent has two options (§4.4's "running continuously" mode
meets fault tolerance):

* **warm restart** — resume from the last checkpointed dual state (prices,
  step sizes, last latencies).  Dual-gradient iterations are
  self-correcting, so a slightly stale checkpoint merely costs a few
  rounds of re-convergence;
* **cold restart** — fall back to the configured initial prices, exactly
  as if the agent had just been deployed.

The store is deliberately simple: a versioned in-memory snapshot per
agent.  Snapshots are deep-copied on both save and load so a restored
agent can never alias live state, and each save records the round it was
taken at so restart telemetry can report checkpoint age.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import DistributedError

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class Checkpoint:
    """One agent snapshot: the round it was taken at plus opaque state."""

    agent: str
    round: int
    state: Dict[str, Any]


class CheckpointStore:
    """Keeps the most recent :class:`Checkpoint` per agent."""

    def __init__(self) -> None:
        self._checkpoints: Dict[str, Checkpoint] = {}
        self.saves = 0
        self.loads = 0

    def save(self, agent: str, round_number: int,
             state: Dict[str, Any]) -> Checkpoint:
        """Snapshot ``state`` for ``agent`` (replaces any older snapshot)."""
        if round_number < 0:
            raise DistributedError(
                f"checkpoint round must be >= 0, got {round_number!r}"
            )
        checkpoint = Checkpoint(
            agent=agent, round=round_number, state=copy.deepcopy(state)
        )
        self._checkpoints[agent] = checkpoint
        self.saves += 1
        return checkpoint

    def load(self, agent: str) -> Optional[Checkpoint]:
        """The latest snapshot for ``agent`` (state deep-copied), or
        ``None`` when the agent has never been checkpointed."""
        checkpoint = self._checkpoints.get(agent)
        if checkpoint is None:
            return None
        self.loads += 1
        return Checkpoint(
            agent=checkpoint.agent,
            round=checkpoint.round,
            state=copy.deepcopy(checkpoint.state),
        )

    def has(self, agent: str) -> bool:
        return agent in self._checkpoints

    def drop(self, agent: str) -> None:
        self._checkpoints.pop(agent, None)

    def clear(self) -> None:
        self._checkpoints.clear()

    def __len__(self) -> int:
        return len(self._checkpoints)
