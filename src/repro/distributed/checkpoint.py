"""Agent checkpointing for crash/restart recovery.

A restarted agent has two options (§4.4's "running continuously" mode
meets fault tolerance):

* **warm restart** — resume from the last checkpointed dual state (prices,
  step sizes, last latencies).  Dual-gradient iterations are
  self-correcting, so a slightly stale checkpoint merely costs a few
  rounds of re-convergence;
* **cold restart** — fall back to the configured initial prices, exactly
  as if the agent had just been deployed.

Warm restarts are only sound for the *same problem*: prices saved for a
different task set (a task arrived or left, a critical time moved, a
share model was retuned) are not a head start, they are garbage dressed
as state.  Each save is therefore stamped with the canonical task-set
fingerprint (:func:`~repro.model.fingerprint.taskset_fingerprint`) and
:meth:`CheckpointStore.load` rejects snapshots whose stamp does not match
the fingerprint the caller expects — the caller then falls back to a cold
restart and the mismatch is counted for telemetry.

The store is deliberately simple: a versioned in-memory snapshot per
agent.  Snapshots are deep-copied on both save and load so a restored
agent can never alias live state, and each save records the round it was
taken at so restart telemetry can report checkpoint age.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import DistributedError

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class Checkpoint:
    """One agent snapshot: the round it was taken at, opaque state, and
    the fingerprint of the task set the state was computed for (``None``
    only for callers that opted out of stamping)."""

    agent: str
    round: int
    state: Dict[str, Any]
    fingerprint: Optional[str] = None


class CheckpointStore:
    """Keeps the most recent :class:`Checkpoint` per agent."""

    def __init__(self) -> None:
        self._checkpoints: Dict[str, Checkpoint] = {}
        self.saves = 0
        self.loads = 0
        self.mismatches = 0

    def save(self, agent: str, round_number: int, state: Dict[str, Any],
             fingerprint: Optional[str] = None) -> Checkpoint:
        """Snapshot ``state`` for ``agent`` (replaces any older snapshot).

        ``fingerprint`` should be the task-set fingerprint the state was
        computed under; unstamped snapshots can never satisfy a stamped
        load."""
        if round_number < 0:
            raise DistributedError(
                f"checkpoint round must be >= 0, got {round_number!r}"
            )
        checkpoint = Checkpoint(
            agent=agent, round=round_number, state=copy.deepcopy(state),
            fingerprint=fingerprint,
        )
        self._checkpoints[agent] = checkpoint
        self.saves += 1
        return checkpoint

    def load(self, agent: str,
             fingerprint: Optional[str] = None) -> Optional[Checkpoint]:
        """The latest snapshot for ``agent`` (state deep-copied), or
        ``None`` when the agent has never been checkpointed.

        When ``fingerprint`` is given, a snapshot stamped with a
        *different* fingerprint — including an unstamped one, which cannot
        be proven compatible — is rejected: the method returns ``None``
        and increments :attr:`mismatches`, and the caller should restart
        cold.  ``fingerprint=None`` skips the check (legacy callers that
        manage problem identity themselves)."""
        checkpoint = self._checkpoints.get(agent)
        if checkpoint is None:
            return None
        if fingerprint is not None and checkpoint.fingerprint != fingerprint:
            self.mismatches += 1
            return None
        self.loads += 1
        return Checkpoint(
            agent=checkpoint.agent,
            round=checkpoint.round,
            state=copy.deepcopy(checkpoint.state),
            fingerprint=checkpoint.fingerprint,
        )

    def has(self, agent: str) -> bool:
        return agent in self._checkpoints

    def drop(self, agent: str) -> None:
        self._checkpoints.pop(agent, None)

    def clear(self) -> None:
        self._checkpoints.clear()

    def __len__(self) -> int:
        return len(self._checkpoints)
