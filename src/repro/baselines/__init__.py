"""Baseline latency-assignment algorithms for comparison with LLA.

* :func:`~repro.baselines.centralized.solve_centralized` — the omniscient
  SLSQP reference optimum;
* deadline-slicing heuristics (:mod:`repro.baselines.slicing`): even,
  cost-proportional and BST-style greedy laxity distribution.
"""

from repro.baselines.centralized import CentralizedSolution, solve_centralized
from repro.baselines.slicing import (
    AssignmentScore,
    bst_slicing,
    evaluate_assignment,
    even_slicing,
    proportional_slicing,
)

__all__ = [
    "solve_centralized",
    "CentralizedSolution",
    "even_slicing",
    "proportional_slicing",
    "bst_slicing",
    "evaluate_assignment",
    "AssignmentScore",
]
