"""Centralized reference solver for the latency-assignment problem.

Solves the primal problem of Section 3 directly with SLSQP:

    maximize    Σ_i U_i(lat)
    subject to  Σ_{s ∈ S_r} share_r(s, lat_s) ≤ B_r          ∀ r
                Σ_{s ∈ p} lat_s ≤ C_i                        ∀ i, p ∈ P_i
                lat_min_s ≤ lat_s ≤ C_i

This is the omniscient, non-distributed oracle the paper's distributed
algorithm approximates; tests assert LLA converges to the same utility (the
problem is strictly concave over a convex set, so the optimum is unique).
It also serves as the quality yardstick in the baseline benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
from scipy import optimize

from repro.errors import OptimizationError
from repro.model.task import TaskSet

__all__ = ["CentralizedSolution", "solve_centralized"]


@dataclass
class CentralizedSolution:
    """Result of the centralized solve."""

    latencies: Dict[str, float]
    utility: float
    success: bool
    message: str

    def critical_paths(self, taskset: TaskSet) -> Dict[str, float]:
        return {
            task.name: task.critical_path(self.latencies)[1]
            for task in taskset.tasks
        }


def solve_centralized(taskset: TaskSet,
                      x0: Optional[Dict[str, float]] = None,
                      max_iterations: int = 500) -> CentralizedSolution:
    """Solve the full primal problem with SLSQP.

    ``x0`` optionally warm-starts the solver (e.g. with an LLA iterate);
    by default latencies start at the midpoint of their bounds.
    """
    names: List[str] = list(taskset.subtask_names)
    index = {name: i for i, name in enumerate(names)}

    lo = np.empty(len(names))
    hi = np.empty(len(names))
    for task in taskset.tasks:
        for sub in task.subtasks:
            i = index[sub.name]
            share_fn = taskset.share_function(sub.name)
            availability = taskset.resources[sub.resource].availability
            lo[i] = share_fn.min_latency(availability)
            hi[i] = max(lo[i], task.critical_time)
            if task.trigger is not None:
                min_share = task.trigger.mean_rate() * sub.exec_time
                if 0.0 < min_share < availability:
                    hi[i] = max(
                        lo[i],
                        min(hi[i], share_fn.latency_for_share(min_share)),
                    )

    if x0 is not None:
        start = np.array([
            np.clip(x0.get(n, (lo[i] + hi[i]) / 2.0), lo[i], hi[i])
            for i, n in enumerate(names)
        ])
    else:
        start = (lo + hi) / 2.0

    def unpack(x: np.ndarray) -> Dict[str, float]:
        return dict(zip(names, x))

    def objective(x: np.ndarray) -> float:
        return -taskset.total_utility(unpack(x))

    constraints = []
    for rname, resource in taskset.resources.items():
        members = [
            (index[sub.name], taskset.share_function(sub.name))
            for _task, sub in taskset.subtasks_on(rname)
        ]
        availability = resource.availability

        def resource_slack(x: np.ndarray, members=members,
                           availability=availability) -> float:
            return availability - sum(fn.share(x[i]) for i, fn in members)

        constraints.append({"type": "ineq", "fun": resource_slack})

    for task in taskset.tasks:
        for path in task.graph.paths:
            idxs = [index[s] for s in path]
            critical = task.critical_time

            def path_slack(x: np.ndarray, idxs=idxs,
                           critical=critical) -> float:
                return critical - sum(x[i] for i in idxs)

            constraints.append({"type": "ineq", "fun": path_slack})

    result = optimize.minimize(
        objective,
        start,
        method="SLSQP",
        bounds=list(zip(lo, hi)),
        constraints=constraints,
        options={"maxiter": max_iterations, "ftol": 1e-10},
    )
    if not np.all(np.isfinite(result.x)):
        raise OptimizationError(
            f"centralized solver diverged: {result.message}"
        )
    latencies = unpack(np.clip(result.x, lo, hi))
    return CentralizedSolution(
        latencies=latencies,
        utility=taskset.total_utility(latencies),
        success=bool(result.success),
        message=str(result.message),
    )
