"""Deadline-slicing baselines (the Section 7 "deadline slicing" family).

These algorithms assign each subtask a slice of its task's end-to-end
deadline using only structural information — no prices, no utilities, no
resource feedback.  They are offline, one-shot, and (as the paper argues)
cannot account for resource capacity or task importance.  Three classic
strategies are implemented:

* :func:`even_slicing` — Bettati & Liu's equal division: every subtask on a
  path receives an equal fraction of the critical time.  For DAGs the
  binding division uses the longest (by hop count) path through the
  subtask.
* :func:`proportional_slicing` — Kao & Garcia-Molina's SLACK-style rule:
  the deadline is divided proportionally to each subtask's execution cost,
  so expensive subtasks receive proportionally more budget.
* :func:`bst_slicing` — a greedy minimum-laxity pass in the spirit of
  Di Natale & Stankovic's BST: repeatedly find the path whose unassigned
  subtasks have the least laxity, distribute that path's remaining budget
  evenly among them, and fix those assignments.

Each returns a full latency assignment; :func:`evaluate_assignment` scores
any assignment with the paper's own metrics (utility, feasibility, loads)
so benches can compare the baselines against LLA on equal terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.errors import OptimizationError
from repro.model.task import Task, TaskSet

__all__ = [
    "even_slicing",
    "proportional_slicing",
    "bst_slicing",
    "AssignmentScore",
    "evaluate_assignment",
]


def _cost(taskset: TaskSet, task: Task, subtask: str) -> float:
    """Execution cost (WCET + lag) used for proportional division."""
    sub = task.subtask(subtask)
    return sub.exec_time + taskset.resources[sub.resource].lag


def even_slicing(taskset: TaskSet) -> Dict[str, float]:
    """Equal division of the critical time along each path.

    A subtask lying on several paths takes the *smallest* slice any of its
    paths implies (hop count of the longest path through it), which keeps
    every path within its deadline.
    """
    latencies: Dict[str, float] = {}
    for task in taskset.tasks:
        hops: Dict[str, int] = {}
        for path in task.graph.paths:
            for s in path:
                hops[s] = max(hops.get(s, 0), len(path))
        for s in task.subtask_names:
            latencies[s] = task.critical_time / hops[s]
    return latencies


def proportional_slicing(taskset: TaskSet) -> Dict[str, float]:
    """Cost-proportional division of the critical time.

    Each subtask's slice is ``C_i × cost_s / (path cost)``, using the
    maximum-cost path through the subtask so that every path stays within
    its deadline.
    """
    latencies: Dict[str, float] = {}
    for task in taskset.tasks:
        fraction: Dict[str, float] = {}
        for path in task.graph.paths:
            path_cost = sum(_cost(taskset, task, s) for s in path)
            if path_cost <= 0.0:
                raise OptimizationError(
                    f"task {task.name!r} has a zero-cost path"
                )
            for s in path:
                f = _cost(taskset, task, s) / path_cost
                fraction[s] = min(fraction.get(s, 1.0), f)
        for s in task.subtask_names:
            latencies[s] = task.critical_time * fraction[s]
    return latencies


def bst_slicing(taskset: TaskSet) -> Dict[str, float]:
    """Greedy minimum-laxity slicing (BST-style).

    Per task: while any subtask is unassigned, pick the root-to-leaf path
    with the least *laxity per unassigned subtask* — laxity being the
    critical time minus the cost of the whole path and minus the latency
    already fixed for its assigned subtasks — and grant each unassigned
    subtask on it its cost plus an even split of the laxity.
    """
    latencies: Dict[str, float] = {}
    for task in taskset.tasks:
        assigned: Dict[str, float] = {}
        paths: List[Tuple[str, ...]] = list(task.graph.paths)
        while len(assigned) < len(task.subtask_names):
            best = None
            best_key = None
            for path in paths:
                unassigned = [s for s in path if s not in assigned]
                if not unassigned:
                    continue
                fixed = sum(assigned[s] for s in path if s in assigned)
                cost = sum(_cost(taskset, task, s) for s in unassigned)
                laxity = task.critical_time - fixed - cost
                key = laxity / len(unassigned)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (path, unassigned, laxity)
            if best is None:
                break
            _path, unassigned, laxity = best
            bonus = max(laxity, 0.0) / len(unassigned)
            for s in unassigned:
                assigned[s] = _cost(taskset, task, s) + bonus
        latencies.update(assigned)
    return latencies


@dataclass
class AssignmentScore:
    """Quality metrics of a latency assignment, LLA's own yardsticks."""

    utility: float
    feasible: bool
    resource_loads: Dict[str, float]
    max_load: float
    critical_paths: Dict[str, float]
    violations: List[str]


def evaluate_assignment(taskset: TaskSet,
                        latencies: Mapping[str, float]) -> AssignmentScore:
    """Score any latency assignment with utility/feasibility/load metrics."""
    loads = taskset.resource_loads(latencies)
    violations = taskset.constraint_violations(latencies)
    return AssignmentScore(
        utility=taskset.total_utility(latencies),
        feasible=not violations,
        resource_loads=loads,
        max_load=max(loads.values()) if loads else 0.0,
        critical_paths={
            task.name: task.critical_path(latencies)[1]
            for task in taskset.tasks
        },
        violations=violations,
    )
