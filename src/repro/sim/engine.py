"""A minimal discrete-event simulation engine.

Deliberately tiny: a time-ordered heap of ``(time, priority, seq, callback)``
entries.  ``priority`` breaks same-time ties deterministically (e.g. job
completions before new arrivals), and ``seq`` (a monotone counter) makes the
order total so runs are reproducible regardless of callback identity.

Events may be cancelled; cancellation is O(1) by marking the handle dead
(the heap entry is skipped when popped), which is what the proportional-
share resource model needs when a share reassignment invalidates a
predicted completion time.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import math
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["EventHandle", "SimulationEngine"]

logger = logging.getLogger(__name__)


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "priority", "seq", "callback", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[[], None]):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class SimulationEngine:
    """Event loop with a virtual clock."""

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, int, EventHandle]] = []
        self._seq = itertools.count()
        self.processed = 0
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._events_counter = None
        # Trace timestamps follow the virtual clock so identical runs
        # write identical traces (unless the caller injected a clock).
        tracer = self.telemetry.tracer
        if tracer.enabled and not tracer.clock_injected:
            tracer.set_clock(lambda: self.now)

    def schedule(self, time: float, callback: Callable[[], None],
                 priority: int = 0) -> EventHandle:
        """Schedule ``callback`` at absolute virtual ``time``.

        Lower ``priority`` runs first among same-time events.
        """
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule at time {time!r}")
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        handle = EventHandle(time, priority, next(self._seq), callback)
        heapq.heappush(self._heap, (time, priority, handle.seq, handle))
        return handle

    def schedule_in(self, delay: float, callback: Callable[[], None],
                    priority: int = 0) -> EventHandle:
        """Schedule relative to the current time."""
        return self.schedule(self.now + delay, callback, priority)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when drained."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the next live event; ``False`` when none remain.

        A callback that raises is never silently discarded: the failure is
        logged with its event context, counted in the
        ``sim.callback_errors_total`` telemetry counter, and re-raised —
        an event that dies mid-simulation would otherwise corrupt the
        virtual timeline invisibly.
        """
        while self._heap:
            time, _prio, _seq, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = time
            try:
                handle.callback()
            except Exception:
                if self.telemetry.enabled:
                    self.telemetry.registry.counter(
                        "sim.callback_errors_total",
                        "event callbacks that raised",
                    ).inc()
                logger.exception(
                    "event callback failed at t=%s (seq %d, priority %d)",
                    time, handle.seq, handle.priority,
                )
                raise
            self.processed += 1
            if self.telemetry.enabled:
                if self._events_counter is None:
                    self._events_counter = self.telemetry.registry.counter(
                        "sim.events_total", "simulation events processed"
                    )
                self._events_counter.inc()
            return True
        return False

    def run_until(self, horizon: float) -> None:
        """Run all events with time ≤ ``horizon``; the clock ends at
        ``horizon`` even if the heap drains earlier."""
        if horizon < self.now:
            raise SimulationError(
                f"horizon {horizon} is before current time {self.now}"
            )
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > horizon:
                break
            self.step()
        self.now = horizon

    def run(self) -> None:
        """Run until the event heap is empty."""
        while self.step():
            pass
