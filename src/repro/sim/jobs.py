"""Job and job-set lifecycle objects (Section 2's terminology).

A *job* is one released instance of a subtask; a *job set* is the set of
jobs corresponding to one task release (one instance of the subtask graph).
Job sets track which jobs have completed so the dispatcher can release
successors when all predecessors of a subtask are done, and compute the
end-to-end latency (dispatch of the root to completion of all end
subtasks) when the last job finishes.
"""

from __future__ import annotations

import itertools
from typing import Optional, Set

from repro.errors import SimulationError
from repro.model.task import Task

__all__ = ["Job", "JobSet"]

_job_ids = itertools.count()


class Job:
    """One released instance of a subtask."""

    __slots__ = (
        "job_id", "subtask", "job_set", "demand",
        "release_time", "start_time", "finish_time",
        "service_received",
    )

    def __init__(self, subtask: str, job_set: "JobSet", demand: float,
                 release_time: float):
        if demand <= 0.0:
            raise SimulationError(
                f"job demand must be positive, got {demand!r}"
            )
        self.job_id = next(_job_ids)
        self.subtask = subtask
        self.job_set = job_set
        self.demand = float(demand)          # remaining work at release
        self.release_time = float(release_time)
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.service_received = 0.0

    @property
    def remaining(self) -> float:
        return max(0.0, self.demand - self.service_received)

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def latency(self) -> float:
        """Response time: release to completion."""
        if self.finish_time is None:
            raise SimulationError(
                f"job {self.job_id} ({self.subtask}) has not finished"
            )
        return self.finish_time - self.release_time

    def __repr__(self) -> str:
        state = "done" if self.done else f"rem={self.remaining:.3f}"
        return f"Job(#{self.job_id} {self.subtask} {state})"


class JobSet:
    """One task release: an in-flight instance of the subtask graph."""

    __slots__ = (
        "task", "instance", "release_time",
        "completed", "finish_time",
    )

    def __init__(self, task: Task, instance: int, release_time: float):
        self.task = task
        self.instance = int(instance)
        self.release_time = float(release_time)
        self.completed: Set[str] = set()
        self.finish_time: Optional[float] = None

    def mark_completed(self, subtask: str, time: float) -> None:
        """Record a job completion; stamps the job-set finish time when the
        last subtask of the graph completes."""
        if subtask in self.completed:
            raise SimulationError(
                f"subtask {subtask!r} completed twice in job set "
                f"{self.task.name}#{self.instance}"
            )
        if subtask not in self.task.graph:
            raise SimulationError(
                f"subtask {subtask!r} does not belong to task {self.task.name!r}"
            )
        self.completed.add(subtask)
        if len(self.completed) == len(self.task.graph):
            self.finish_time = time

    def ready_successors(self, subtask: str) -> Set[str]:
        """Successors of ``subtask`` whose predecessors are now all done."""
        ready = set()
        for succ in self.task.graph.successors(subtask):
            if all(p in self.completed
                   for p in self.task.graph.predecessors(succ)):
                ready.add(succ)
        return ready

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def latency(self) -> float:
        """End-to-end latency: release of the root to completion of all
        end subtasks."""
        if self.finish_time is None:
            raise SimulationError(
                f"job set {self.task.name}#{self.instance} has not finished"
            )
        return self.finish_time - self.release_time

    def __repr__(self) -> str:
        state = "done" if self.done else f"{len(self.completed)}/{len(self.task.graph)}"
        return f"JobSet({self.task.name}#{self.instance} {state})"
