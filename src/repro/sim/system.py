"""The simulated distributed system: resources + dispatcher + metrics.

This is the reproduction's stand-in for the paper's Section 6 prototype
(RTSJ JVM on IBM-RTLinux with share-scheduled CPUs).  It wires a
:class:`~repro.model.task.TaskSet` to proportional-share resource
simulators, releases job sets from each task's triggering event, enforces
the subtask-graph precedence, and records latencies.

The optimizer interacts with the system exactly as it would with the real
prototype: it *enacts* shares (:meth:`SimulatedSystem.enact_shares`) and
*samples* observed latencies (via :attr:`recorder`), nothing else.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.core.structure import TaskSetStructure
from repro.errors import SimulationError
from repro.model.task import Task, TaskSet
from repro.sim.engine import SimulationEngine
from repro.sim.jobs import Job, JobSet
from repro.sim.metrics import LatencyRecorder
from repro.sim.resources import GPSResource, QuantumResource, _BaseResource
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["SimulatedSystem"]

#: Arrival events run after same-time completions (engine priority).
_ARRIVAL_PRIORITY = 1


class SimulatedSystem:
    """A running instance of the workload on simulated resources.

    Parameters
    ----------
    taskset:
        The workload.  Each resource's ``1 − availability`` becomes a
        background (phantom) flow weight — the paper's GC reservation.
    shares:
        Initial share per subtask (typically from an LLA allocation).
    model:
        ``"gps"`` for fluid proportional sharing, ``"quantum"`` for the
        surplus-fair quantum scheduler.
    quantum:
        Quantum length for the ``"quantum"`` model (ms).
    exec_time_factor:
        Optional per-job demand scaling: a callable ``rng → factor`` in
        ``(0, 1]`` applied to the WCET (real jobs rarely consume their
        worst case).  ``None`` means every job runs exactly its WCET.
    seed:
        Seed for arrival processes and demand randomization.
    recorder_max_samples:
        Optional per-series cap on the latency recorder (tail-window ring
        buffer) so long closed-loop runs stay O(1) memory.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`: job/job-set latency
        histograms, deadline-miss counters, per-resource queue-depth
        gauges and event counts.
    structure:
        Optional compiled :class:`~repro.core.structure.TaskSetStructure`
        of ``taskset`` (e.g. from the optimizer driving this system).
        When given, the static subtask→exec-time/resource maps are read
        from its arrays instead of re-traversing the object graph.
    """

    def __init__(
        self,
        taskset: TaskSet,
        shares: Mapping[str, float],
        model: str = "gps",
        quantum: float = 1.0,
        exec_time_factor: Optional[Callable[[np.random.Generator], float]] = None,
        seed: int = 0,
        recorder_max_samples: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        structure: Optional[TaskSetStructure] = None,
    ):
        self.taskset = taskset
        self.structure = structure
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.engine = SimulationEngine(telemetry=telemetry)
        self.recorder = LatencyRecorder(
            max_samples=recorder_max_samples, telemetry=telemetry
        )
        if structure is not None:
            # The compiled arrays already hold every static map the
            # simulator needs — read them instead of walking the graph.
            self._critical_times = {
                name: float(structure.path_crit[structure.task_path_starts[t]])
                for t, name in enumerate(structure.task_names)
            }
        else:
            self._critical_times = {
                task.name: task.critical_time for task in taskset.tasks
            }
        self.rng = np.random.default_rng(seed)
        self.exec_time_factor = exec_time_factor
        self.resources: Dict[str, _BaseResource] = {}
        self._instances: Dict[str, int] = {t.name: 0 for t in taskset.tasks}
        self._horizon_scheduled = 0.0
        self._streams: Dict[str, object] = {}
        self._pending_arrival: Dict[str, float] = {}

        for rname, resource in taskset.resources.items():
            background = 1.0 - resource.availability
            if model == "gps":
                sim = GPSResource(
                    rname, self.engine, capacity=1.0,
                    background_weight=background,
                    on_complete=self._job_completed,
                )
            elif model == "quantum":
                sim = QuantumResource(
                    rname, self.engine, capacity=1.0,
                    background_weight=background,
                    on_complete=self._job_completed,
                    quantum=quantum,
                )
            else:
                raise SimulationError(
                    f"unknown resource model {model!r}; "
                    "expected 'gps' or 'quantum'"
                )
            self.resources[rname] = sim

        for task in taskset.tasks:
            for sub in task.subtasks:
                if sub.name not in shares:
                    raise SimulationError(
                        f"no share assigned for subtask {sub.name!r}"
                    )
                self.resources[sub.resource].add_flow(
                    sub.name, shares[sub.name]
                )

        if structure is not None:
            self._subtask_exec = dict(
                zip(structure.subtask_names, structure.sub_exec.tolist())
            )
            self._subtask_resource = {
                name: structure.resource_names[int(r)]
                for name, r in zip(
                    structure.subtask_names, structure.sub_resource
                )
            }
        else:
            self._subtask_exec = {
                sub.name: sub.exec_time
                for task in taskset.tasks for sub in task.subtasks
            }
            self._subtask_resource = {
                sub.name: sub.resource
                for task in taskset.tasks for sub in task.subtasks
            }

    # -- share enactment ------------------------------------------------------------

    def enact_shares(self, shares: Mapping[str, float]) -> None:
        """Apply a new share assignment (the optimizer's actuation path)."""
        for subtask, share in shares.items():
            resource = self._subtask_resource.get(subtask)
            if resource is None:
                raise SimulationError(f"unknown subtask {subtask!r}")
            self.resources[resource].set_share(subtask, share)

    def current_share(self, subtask: str) -> float:
        resource = self._subtask_resource[subtask]
        return self.resources[resource].flows[subtask].weight

    def inject_interference(self, resource_name: str,
                            extra_weight: float) -> None:
        """Add background interference to one resource, *without* telling
        the optimizer (its model still believes the configured
        availability).  ``extra_weight`` stacks on the reservation implied
        by ``1 − availability``; 0 removes the interference."""
        if resource_name not in self.resources:
            raise SimulationError(f"unknown resource {resource_name!r}")
        base = 1.0 - self.taskset.resources[resource_name].availability
        self.resources[resource_name].set_background(base + extra_weight)

    # -- workload release -------------------------------------------------------------

    def _demand(self, subtask: str) -> float:
        demand = self._subtask_exec[subtask]
        if self.exec_time_factor is not None:
            factor = self.exec_time_factor(self.rng)
            if not 0.0 < factor <= 1.0:
                raise SimulationError(
                    f"exec_time_factor produced {factor!r}, expected (0, 1]"
                )
            demand *= factor
        return demand

    def _release_job(self, job_set: JobSet, subtask: str) -> None:
        job = Job(
            subtask=subtask,
            job_set=job_set,
            demand=self._demand(subtask),
            release_time=self.engine.now,
        )
        resource = self._subtask_resource[subtask]
        self.resources[resource].submit(job)

    def _release_jobset(self, task: Task) -> None:
        self._instances[task.name] += 1
        job_set = JobSet(task, self._instances[task.name], self.engine.now)
        self._release_job(job_set, task.graph.root)

    def _job_completed(self, job: Job) -> None:
        self.recorder.record_job(job.subtask, job.latency)
        instrumented = self.telemetry.enabled
        if instrumented:
            self._observe_job(job)
        job_set: JobSet = job.job_set
        job_set.mark_completed(job.subtask, self.engine.now)
        if job_set.done:
            self.recorder.record_jobset(job_set.task.name, job_set.latency)
            if instrumented:
                self._observe_jobset(job_set)
        else:
            for succ in job_set.ready_successors(job.subtask):
                self._release_job(job_set, succ)

    def _observe_job(self, job: Job) -> None:
        registry = self.telemetry.registry
        registry.histogram(
            "sim.job_latency_ms", "observed per-job latencies",
            max_samples=8192,
        ).observe(job.latency)
        resource = self._subtask_resource[job.subtask]
        depth = sum(
            len(flow.queue)
            for flow in self.resources[resource].flows.values()
        )
        registry.gauge(
            f"sim.queue_depth.{resource}",
            f"jobs queued on resource {resource}",
        ).set(depth)

    def _observe_jobset(self, job_set: JobSet) -> None:
        registry = self.telemetry.registry
        registry.histogram(
            "sim.jobset_latency_ms", "observed end-to-end job-set latencies",
            max_samples=8192,
        ).observe(job_set.latency)
        task = job_set.task.name
        if job_set.latency > self._critical_times[task]:
            registry.counter(
                "sim.deadline_misses_total",
                "job sets finishing past their critical time",
            ).inc()
            registry.counter(
                f"sim.deadline_misses.{task}",
                f"deadline misses of task {task}",
            ).inc()

    def _schedule_arrivals(self, until: float) -> None:
        """Pre-schedule trigger arrivals in ``[scheduled_so_far, until)``.

        Each task owns an infinite arrival stream that is advanced lazily,
        so extending the horizon never re-randomizes earlier arrivals.
        """
        for task in self.taskset.tasks:
            if task.trigger is None:
                continue
            if task.name not in self._streams:
                self._streams[task.name] = task.trigger.stream(self.rng)
                self._pending_arrival[task.name] = next(
                    self._streams[task.name]
                )
            t = self._pending_arrival[task.name]
            while t < until:
                if t >= self.engine.now:
                    self.engine.schedule(
                        t,
                        (lambda tk=task: self._release_jobset(tk)),
                        _ARRIVAL_PRIORITY,
                    )
                t = next(self._streams[task.name])
            self._pending_arrival[task.name] = t
        self._horizon_scheduled = until

    # -- execution ----------------------------------------------------------------------

    def run_until(self, horizon: float) -> None:
        """Advance the simulation to absolute virtual time ``horizon``."""
        if horizon > self._horizon_scheduled:
            self._schedule_arrivals(horizon)
        self.engine.run_until(horizon)

    def run_for(self, duration: float) -> None:
        """Advance the simulation by ``duration`` time units."""
        self.run_until(self.engine.now + duration)

    # -- observation -----------------------------------------------------------------------

    def utilizations(self) -> Dict[str, float]:
        """Busy fraction per resource since the start of the run."""
        elapsed = self.engine.now
        return {
            rname: sim.utilization(elapsed)
            for rname, sim in self.resources.items()
        }
