"""Closed-loop operation: optimizer ↔ running system (Section 6's pattern).

The paper's prototype runs LLA continuously against a live system:

* the optimizer computes latencies, converts them to shares through the
  (possibly error-corrected) share model, and *enacts* them on the system;
* the system executes jobs under those shares while the recorder samples
  observed latencies;
* after every window, high-percentile latency samples update the additive
  model error (Section 6.3), the corrected model feeds back into the
  optimizer, and the loop repeats.

:class:`ClosedLoopRuntime` packages that loop against the discrete-event
simulator.  Epoch records capture exactly the quantities Figure 8 plots:
per-subtask enacted shares and the (raw and smoothed) error values.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.enactment import AlwaysEnact, EnactmentPolicy
from repro.core.error_correction import ErrorCorrector
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.errors import SimulationError
from repro.model.share import CorrectedShare
from repro.model.task import TaskSet
from repro.sim.system import SimulatedSystem
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["EpochRecord", "ClosedLoopRuntime"]

logger = logging.getLogger(__name__)


@dataclass
class EpochRecord:
    """Observable state at the end of one control epoch."""

    epoch: int
    time: float
    correction_enabled: bool
    enacted: bool
    shares: Dict[str, float]
    latency_targets: Dict[str, float]
    smoothed_errors: Dict[str, float]
    raw_errors: Dict[str, float] = field(default_factory=dict)
    observed_p95: Dict[str, float] = field(default_factory=dict)
    utility: float = 0.0


class ClosedLoopRuntime:
    """Drives LLA against a :class:`~repro.sim.system.SimulatedSystem`."""

    def __init__(
        self,
        taskset: TaskSet,
        window: float = 1000.0,
        model: str = "gps",
        quantum: float = 1.0,
        seed: int = 0,
        optimizer_config: Optional[LLAConfig] = None,
        corrector: Optional[ErrorCorrector] = None,
        optimizer_steps_per_epoch: int = 400,
        exec_time_factor=None,
        enactment: Optional[EnactmentPolicy] = None,
        recorder_max_samples: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        if window <= 0.0:
            raise SimulationError(f"window must be positive, got {window!r}")
        self.taskset = taskset
        self.window = float(window)
        self.correction_enabled = False
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.corrector = corrector or ErrorCorrector(
            taskset, telemetry=telemetry
        )
        self.enactment = enactment or AlwaysEnact()
        self.optimizer = LLAOptimizer(
            taskset,
            optimizer_config or LLAConfig(max_iterations=2000),
            telemetry=telemetry,
        )
        self.optimizer_steps_per_epoch = int(optimizer_steps_per_epoch)
        # Remember the raw (uncorrected) model per subtask: error is always
        # measured against the raw model, matching CorrectedShare semantics.
        self._base_model = {
            name: taskset.share_function(name)
            for name in taskset.subtask_names
        }
        # Initial allocation: optimize on the raw model only.
        self.optimizer.run()
        self.latencies = dict(self.optimizer.latencies)
        self.system = SimulatedSystem(
            taskset,
            self._shares_for(self.latencies),
            model=model,
            quantum=quantum,
            seed=seed,
            exec_time_factor=exec_time_factor,
            recorder_max_samples=recorder_max_samples,
            telemetry=telemetry,
            structure=self.optimizer.structure,
        )
        self.epoch = 0
        self.history: List[EpochRecord] = []

    # -- helpers -----------------------------------------------------------------

    def _shares_for(self, latencies: Dict[str, float]) -> Dict[str, float]:
        return {
            name: self.taskset.share_function(name).share(lat)
            for name, lat in latencies.items()
        }

    def _base_prediction(self, subtask: str) -> float:
        """Raw-model latency prediction at the currently enacted share."""
        share = self.system.current_share(subtask)
        fn = self._base_model[subtask]
        if isinstance(fn, CorrectedShare):
            fn = fn.base
        return fn.latency_for_share(share)

    def enable_correction(self) -> None:
        """Turn on Section 6.3's online model error correction."""
        self.correction_enabled = True

    def disable_correction(self) -> None:
        self.correction_enabled = False

    # -- the loop ------------------------------------------------------------------

    def run_epoch(self) -> EpochRecord:
        """One control epoch: simulate a window, correct, re-optimize, enact."""
        instrumented = self.telemetry.enabled
        if instrumented:
            started = time.perf_counter()
        self.epoch += 1
        self.system.run_for(self.window)

        raw_errors: Dict[str, float] = {}
        observed_p95: Dict[str, float] = {}
        if self.correction_enabled:
            for name in self.taskset.subtask_names:
                samples = self.system.recorder.drain_jobs(name)
                if not samples:
                    continue
                predicted = self._base_prediction(name)
                before = len(self.corrector.raw_errors(name))
                self.corrector.observe_batch(name, predicted, samples)
                history = self.corrector.raw_errors(name)
                if len(history) > before:
                    raw_errors[name] = history[-1]
                observed_p95[name] = predicted + raw_errors.get(name, 0.0)
            self.corrector.apply_all()
            self.optimizer.refresh_model()
        else:
            # Keep the recorder bounded even when correction is off.
            for name in self.taskset.subtask_names:
                self.system.recorder.drain_jobs(name)

        # Run the full step budget: the optimizer "runs continuously" in the
        # paper's prototype.  Breaking on the convergence detector would be
        # premature here — after a model correction the dual prices drift
        # slowly toward the new equilibrium (the resource gradient is small
        # once loads sit just under availability), and a utility-stability
        # window mistakes that drift for convergence.
        for _ in range(self.optimizer_steps_per_epoch):
            self.optimizer.step()
        self.latencies = dict(self.optimizer.latencies)
        shares = self._shares_for(self.latencies)
        enacted = self.enactment.should_enact(shares)
        if enacted:
            self.system.enact_shares(shares)
            self.enactment.notify_enacted(shares)

        record = EpochRecord(
            epoch=self.epoch,
            time=self.system.engine.now,
            correction_enabled=self.correction_enabled,
            enacted=enacted,
            shares=shares,
            latency_targets=dict(self.latencies),
            smoothed_errors={
                name: self.corrector.error(name)
                for name in self.taskset.subtask_names
            },
            raw_errors=raw_errors,
            observed_p95=observed_p95,
            utility=self.taskset.total_utility(self.latencies),  # statan: disable=REP016 -- per-epoch summary, not per-iteration
        )
        self.history.append(record)
        logger.debug(
            "epoch %d (t=%.1f): utility %.6f, enacted=%s, "
            "correction=%s, %d corrections observed",
            record.epoch, record.time, record.utility, record.enacted,
            record.correction_enabled, len(raw_errors),
        )
        if instrumented:
            registry = self.telemetry.registry
            registry.counter(
                "loop.epochs_total", "closed-loop control epochs").inc()
            registry.timer(
                "loop.epoch_seconds", "wall time per control epoch",
                max_samples=4096,
            ).observe(time.perf_counter() - started)
            if self.telemetry.tracer.enabled:
                self.telemetry.tracer.emit(
                    "epoch", epoch=record.epoch, time=record.time,
                    utility=float(record.utility), enacted=record.enacted,
                    correction_enabled=record.correction_enabled,
                    corrections=len(raw_errors),
                )
        return record

    def run_epochs(self, count: int) -> List[EpochRecord]:
        return [self.run_epoch() for _ in range(count)]

    # -- queries ---------------------------------------------------------------------

    def share_trace(self, subtask: str) -> List[float]:
        """Enacted share per epoch for one subtask (Figure 8's solid lines)."""
        return [rec.shares[subtask] for rec in self.history]

    def error_trace(self, subtask: str) -> List[float]:
        """Smoothed error per epoch (Figure 8's error line)."""
        return [rec.smoothed_errors[subtask] for rec in self.history]
