"""Proportional-share resource simulators.

Two fidelity levels of the same abstraction — a resource serving per-subtask
*flows*, each with an assigned share, jobs FIFO within their flow:

* :class:`GPSResource` — fluid Generalized Processor Sharing.  Active flows
  receive service simultaneously at rates proportional to their shares,
  renormalized over the active set (work-conserving, like the PS
  schedulers the paper assumes).  Exact and fast: completions are computed
  analytically between state changes.

* :class:`QuantumResource` — a quantized approximation of Surplus Fair
  Scheduling (Chandra et al., the scheduler inside the paper's
  IBM-RTLinux kernel).  Service is dispensed in fixed quanta to the active
  flow with the smallest weighted virtual time; new arrivals join at the
  current virtual time.  Quantization introduces exactly the kind of
  scheduling lag the share model's ``l_r`` term over-approximates, which
  is what makes Section 6.3's error correction profitable.

Background consumers (the paper's Metronome GC with its fixed 0.1 share)
are modeled as a permanent phantom flow that participates in the weight
normalization but never completes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.errors import SimulationError
from repro.sim.engine import EventHandle, SimulationEngine
from repro.sim.jobs import Job

__all__ = ["FlowState", "GPSResource", "QuantumResource"]

#: Completion events run before same-time arrivals (engine priority).
_COMPLETION_PRIORITY = -1

#: Minimum effective weight, so a zero-share flow still drains (a real PS
#: scheduler never literally starves a runnable flow).
_MIN_WEIGHT = 1e-6

#: Work units below which a job counts as finished.  Must be large enough
#: that the implied completion delay (epsilon / rate) stays above the
#: float64 ULP of the simulation clock, or a completion event could
#: reschedule at an identical timestamp forever.  1e-9 ms of work is nine
#: orders of magnitude below any WCET in the paper and keeps the engine
#: sound for clocks up to ~1e7 ms.
_WORK_EPSILON = 1e-9


class FlowState:
    """One subtask's backlog and share on a resource."""

    __slots__ = ("subtask", "weight", "queue", "virtual_start")

    def __init__(self, subtask: str, weight: float):
        self.subtask = subtask
        self.weight = max(float(weight), _MIN_WEIGHT)
        self.queue: Deque[Job] = deque()
        # Quantum scheduler bookkeeping: normalized service received.
        self.virtual_start = 0.0

    @property
    def active(self) -> bool:
        return bool(self.queue)

    @property
    def head(self) -> Job:
        return self.queue[0]


class _BaseResource:
    """Common flow management for both resource models."""

    def __init__(self, name: str, engine: SimulationEngine,
                 capacity: float = 1.0, background_weight: float = 0.0,
                 on_complete: Optional[Callable[[Job], None]] = None):
        if capacity <= 0.0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        if background_weight < 0.0:
            raise SimulationError(
                f"background_weight must be >= 0, got {background_weight!r}"
            )
        self.name = name
        self.engine = engine
        self.capacity = float(capacity)
        self.background_weight = float(background_weight)
        self.on_complete = on_complete
        self.flows: Dict[str, FlowState] = {}
        self.busy_time = 0.0
        self.completed_jobs = 0

    def add_flow(self, subtask: str, share: float) -> None:
        """Register a subtask flow with its assigned share."""
        if subtask in self.flows:
            raise SimulationError(
                f"flow {subtask!r} already exists on resource {self.name!r}"
            )
        self.flows[subtask] = FlowState(subtask, share)

    def set_share(self, subtask: str, share: float) -> None:
        """Re-enact a share assignment (takes effect immediately)."""
        flow = self._require_flow(subtask)
        self._before_state_change()
        flow.weight = max(float(share), _MIN_WEIGHT)
        self._after_state_change()

    def set_background(self, weight: float) -> None:
        """Change the background (phantom) consumer's weight at run time.

        Models interference the optimizer does not know about — a noisy
        co-located tenant, a garbage collector under pressure.  Takes
        effect immediately for all in-flight jobs.
        """
        if weight < 0.0:
            raise SimulationError(
                f"background weight must be >= 0, got {weight!r}"
            )
        self._before_state_change()
        self.background_weight = float(weight)
        self._after_state_change()

    def submit(self, job: Job) -> None:
        """Enqueue a job on its subtask's flow."""
        flow = self._require_flow(job.subtask)
        self._before_state_change()
        self._on_enqueue(flow, job)
        flow.queue.append(job)
        if job.start_time is None and len(flow.queue) == 1:
            job.start_time = self.engine.now
        self._after_state_change()

    def backlog(self, subtask: str) -> int:
        """Jobs queued (including in service) for a subtask."""
        return len(self._require_flow(subtask).queue)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the resource spent serving jobs."""
        if elapsed <= 0.0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def _require_flow(self, subtask: str) -> FlowState:
        try:
            return self.flows[subtask]
        except KeyError as exc:
            raise SimulationError(
                f"no flow {subtask!r} on resource {self.name!r}"
            ) from exc

    def _finish(self, flow: FlowState, job: Job) -> None:
        job.finish_time = self.engine.now
        job.service_received = job.demand
        flow.queue.popleft()
        if flow.queue:
            flow.head.start_time = self.engine.now
        self.completed_jobs += 1
        if self.on_complete is not None:
            self.on_complete(job)

    # Hooks for subclasses.
    def _before_state_change(self) -> None: ...
    def _after_state_change(self) -> None: ...
    def _on_enqueue(self, flow: FlowState, job: Job) -> None: ...


class GPSResource(_BaseResource):
    """Fluid work-conserving proportional sharing.

    Between state changes (arrival, completion, share update), each active
    flow's head job receives service at

        rate_f = capacity × w_f / (Σ_active w + background_weight)

    The implementation advances service lazily: whenever the state changes,
    all heads are credited for the elapsed interval at the rates that held,
    and the next completion event is recomputed.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._last_update = self.engine.now
        self._rates: Dict[str, float] = {}
        self._completion: Optional[EventHandle] = None

    def _active_flows(self):
        return [f for f in self.flows.values() if f.active]

    def _compute_rates(self) -> None:
        active = self._active_flows()
        total = sum(f.weight for f in active) + self.background_weight
        self._rates = {}
        if not active or total <= 0.0:
            return
        for flow in active:
            self._rates[flow.subtask] = self.capacity * flow.weight / total

    def _before_state_change(self) -> None:
        """Credit service for the interval since the last state change."""
        now = self.engine.now
        dt = now - self._last_update
        if dt > 0.0:
            active = self._active_flows()
            if active:
                self.busy_time += dt
            for flow in active:
                rate = self._rates.get(flow.subtask, 0.0)
                flow.head.service_received = min(
                    flow.head.demand, flow.head.service_received + rate * dt
                )
        self._last_update = now

    def _after_state_change(self) -> None:
        """Recompute rates and the next completion event."""
        self._compute_rates()
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        soonest: Optional[float] = None
        for flow in self._active_flows():
            rate = self._rates.get(flow.subtask, 0.0)
            if rate <= 0.0:
                continue
            eta = flow.head.remaining / rate
            if soonest is None or eta < soonest:
                soonest = eta
        if soonest is not None:
            self._completion = self.engine.schedule_in(
                max(soonest, 0.0), self._complete_due, _COMPLETION_PRIORITY
            )

    def _complete_due(self) -> None:
        """Completion event: finish every job that has drained."""
        self._before_state_change()
        for flow in self._active_flows():
            # Fluid completions can tie; finish all fully-served heads.
            while flow.active and flow.head.remaining <= _WORK_EPSILON:
                self._finish(flow, flow.head)
        self._after_state_change()


class QuantumResource(_BaseResource):
    """Quantum-based surplus-fair scheduling approximation.

    Every ``quantum`` time units the scheduler picks the active flow with
    the smallest virtual time (service received divided by weight, offset
    so arrivals join at the current virtual floor — the start-time rule
    that keeps a returning flow from monopolizing the resource) and serves
    its head job exclusively for the quantum (or until the job finishes).

    The background flow is an always-active phantom: when the lottery picks
    it, the resource idles for the quantum (GC running).
    """

    _BACKGROUND = "__background__"

    def __init__(self, *args, quantum: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        if quantum <= 0.0:
            raise SimulationError(f"quantum must be positive, got {quantum!r}")
        self.quantum = float(quantum)
        self._bg_virtual = 0.0
        self._tick_scheduled = False

    def _on_enqueue(self, flow: FlowState, job: Job) -> None:
        if not flow.active:
            # Start-time rule: join at the current virtual floor.
            flow.virtual_start = max(flow.virtual_start, self._virtual_floor())

    def _virtual_floor(self) -> float:
        virtuals = [f.virtual_start for f in self.flows.values() if f.active]
        if self.background_weight > 0.0:
            virtuals.append(self._bg_virtual)
        return min(virtuals) if virtuals else 0.0

    def _after_state_change(self) -> None:
        if not self._tick_scheduled and any(
                f.active for f in self.flows.values()):
            self._tick_scheduled = True
            self.engine.schedule_in(0.0, self._tick, _COMPLETION_PRIORITY)

    def _tick(self) -> None:
        """Serve one quantum to the most-deserving flow."""
        self._tick_scheduled = False
        active = [f for f in self.flows.values() if f.active]
        if not active:
            return

        candidates = [(f.virtual_start, f.subtask) for f in active]
        if self.background_weight > 0.0:
            candidates.append((self._bg_virtual, self._BACKGROUND))
        _virtual, chosen = min(candidates)

        if chosen == self._BACKGROUND:
            # GC takes the quantum; the resource is busy but no job advances.
            self._bg_virtual += self.quantum / self.background_weight
            self.busy_time += self.quantum
            self.engine.schedule_in(self.quantum, self._resume_tick,
                                    _COMPLETION_PRIORITY)
            return

        flow = self.flows[chosen]
        job = flow.head
        service = min(self.quantum * self.capacity, job.remaining)
        duration = service / self.capacity
        flow.virtual_start += service / flow.weight
        self.busy_time += duration

        def finish_quantum() -> None:
            job.service_received += service
            if job.remaining <= _WORK_EPSILON:
                self._finish(flow, job)
            self._tick_scheduled = False
            self._after_state_change()

        self._tick_scheduled = True
        self.engine.schedule_in(duration, finish_quantum, _COMPLETION_PRIORITY)

    def _resume_tick(self) -> None:
        self._after_state_change()
