"""Measurement: per-subtask job latencies and per-task job-set latencies.

The recorder is what the online error corrector (Section 6.3) samples from:
it keeps raw job latencies per subtask so callers can take arbitrary
percentiles ("high percentile samples, greater than 90th, were used"), and
job-set end-to-end latencies per task for SLA/utility accounting.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError

__all__ = ["LatencyRecorder"]


class LatencyRecorder:
    """Accumulates job and job-set latencies with windowed draining."""

    def __init__(self) -> None:
        self._job_latencies: Dict[str, List[float]] = defaultdict(list)
        self._jobset_latencies: Dict[str, List[float]] = defaultdict(list)
        self.jobs_recorded = 0
        self.jobsets_recorded = 0

    # -- recording ---------------------------------------------------------------

    def record_job(self, subtask: str, latency: float) -> None:
        if latency < 0.0:
            raise SimulationError(f"negative job latency {latency!r}")
        self._job_latencies[subtask].append(latency)
        self.jobs_recorded += 1

    def record_jobset(self, task: str, latency: float) -> None:
        if latency < 0.0:
            raise SimulationError(f"negative job-set latency {latency!r}")
        self._jobset_latencies[task].append(latency)
        self.jobsets_recorded += 1

    # -- queries -----------------------------------------------------------------

    def job_latencies(self, subtask: str) -> List[float]:
        return list(self._job_latencies.get(subtask, []))

    def jobset_latencies(self, task: str) -> List[float]:
        return list(self._jobset_latencies.get(task, []))

    def job_count(self, subtask: str) -> int:
        return len(self._job_latencies.get(subtask, []))

    def job_percentile(self, subtask: str, percentile: float) -> Optional[float]:
        """Empirical percentile of a subtask's job latencies (``None`` when
        no samples exist)."""
        samples = self._job_latencies.get(subtask)
        if not samples:
            return None
        return float(np.percentile(samples, percentile))

    def jobset_percentile(self, task: str, percentile: float) -> Optional[float]:
        samples = self._jobset_latencies.get(task)
        if not samples:
            return None
        return float(np.percentile(samples, percentile))

    def jobset_miss_rate(self, task: str, critical_time: float) -> Optional[float]:
        """Fraction of job sets exceeding the critical time."""
        samples = self._jobset_latencies.get(task)
        if not samples:
            return None
        misses = sum(1 for lat in samples if lat > critical_time)
        return misses / len(samples)

    # -- windowing ----------------------------------------------------------------

    def drain_jobs(self, subtask: str) -> List[float]:
        """Return and clear a subtask's samples (one correction window)."""
        samples = self._job_latencies.pop(subtask, [])
        return samples

    def clear(self) -> None:
        self._job_latencies.clear()
        self._jobset_latencies.clear()
