"""Measurement: per-subtask job latencies and per-task job-set latencies.

The recorder is what the online error corrector (Section 6.3) samples from:
it keeps raw job latencies per subtask so callers can take arbitrary
percentiles ("high percentile samples, greater than 90th, were used"), and
job-set end-to-end latencies per task for SLA/utility accounting.

Long closed-loop runs must not grow without bound, so the recorder takes an
optional ``max_samples``: each per-subtask / per-task series becomes a tail
window (ring buffer of the most recent samples), which is exactly what the
percentile-based corrector wants — recent behaviour, O(1) memory.  Evicted
samples are counted (:attr:`jobs_dropped` / :attr:`jobsets_dropped`) and,
when a :class:`~repro.telemetry.Telemetry` is attached, exported through
its registry as ``sim.recorder.jobs_dropped_total`` /
``sim.recorder.jobsets_dropped_total``.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["LatencyRecorder"]


class LatencyRecorder:
    """Accumulates job and job-set latencies with windowed draining.

    Parameters
    ----------
    max_samples:
        Optional cap per series.  ``None`` (the default) retains every
        sample, matching the original unbounded behaviour; with a cap, the
        oldest samples are evicted ring-buffer style and counted as
        dropped.
    telemetry:
        Optional telemetry context for the dropped-sample counters.
    """

    def __init__(self, max_samples: Optional[int] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise SimulationError(
                f"max_samples must be >= 1, got {max_samples!r}"
            )
        self.max_samples = max_samples
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

        def _series() -> Deque[float]:
            return deque(maxlen=max_samples)

        self._job_latencies: Dict[str, Deque[float]] = defaultdict(_series)
        self._jobset_latencies: Dict[str, Deque[float]] = defaultdict(_series)
        self.jobs_recorded = 0
        self.jobsets_recorded = 0
        self.jobs_dropped = 0
        self.jobsets_dropped = 0

    # -- recording ---------------------------------------------------------------

    def record_job(self, subtask: str, latency: float) -> None:
        if latency < 0.0:
            raise SimulationError(f"negative job latency {latency!r}")
        series = self._job_latencies[subtask]
        if series.maxlen is not None and len(series) == series.maxlen:
            self.jobs_dropped += 1
            if self.telemetry.enabled:
                self.telemetry.registry.counter(
                    "sim.recorder.jobs_dropped_total",
                    "job-latency samples evicted from the tail window",
                ).inc()
        series.append(latency)
        self.jobs_recorded += 1

    def record_jobset(self, task: str, latency: float) -> None:
        if latency < 0.0:
            raise SimulationError(f"negative job-set latency {latency!r}")
        series = self._jobset_latencies[task]
        if series.maxlen is not None and len(series) == series.maxlen:
            self.jobsets_dropped += 1
            if self.telemetry.enabled:
                self.telemetry.registry.counter(
                    "sim.recorder.jobsets_dropped_total",
                    "job-set latency samples evicted from the tail window",
                ).inc()
        series.append(latency)
        self.jobsets_recorded += 1

    # -- queries -----------------------------------------------------------------

    def job_latencies(self, subtask: str) -> List[float]:
        return list(self._job_latencies.get(subtask, ()))

    def jobset_latencies(self, task: str) -> List[float]:
        return list(self._jobset_latencies.get(task, ()))

    def job_count(self, subtask: str) -> int:
        return len(self._job_latencies.get(subtask, ()))

    @property
    def dropped_samples(self) -> int:
        """Total evictions across both series kinds."""
        return self.jobs_dropped + self.jobsets_dropped

    def job_percentile(self, subtask: str, percentile: float) -> Optional[float]:
        """Empirical percentile of a subtask's retained job latencies
        (``None`` when no samples exist)."""
        samples = self._job_latencies.get(subtask)
        if not samples:
            return None
        return float(np.percentile(list(samples), percentile))

    def jobset_percentile(self, task: str, percentile: float) -> Optional[float]:
        samples = self._jobset_latencies.get(task)
        if not samples:
            return None
        return float(np.percentile(list(samples), percentile))

    def jobset_miss_rate(self, task: str, critical_time: float) -> Optional[float]:
        """Fraction of retained job sets exceeding the critical time."""
        samples = self._jobset_latencies.get(task)
        if not samples:
            return None
        misses = sum(1 for lat in samples if lat > critical_time)
        return misses / len(samples)

    # -- windowing ----------------------------------------------------------------

    def drain_jobs(self, subtask: str) -> List[float]:
        """Return and clear a subtask's samples (one correction window)."""
        samples = self._job_latencies.pop(subtask, ())
        return list(samples)

    def clear(self) -> None:
        self._job_latencies.clear()
        self._jobset_latencies.clear()
