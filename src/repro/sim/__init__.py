"""Discrete-event simulation substrate (the Section 6 prototype, simulated).

* :class:`~repro.sim.engine.SimulationEngine` — event loop;
* :class:`~repro.sim.resources.GPSResource` /
  :class:`~repro.sim.resources.QuantumResource` — proportional-share
  resource models (fluid GPS, surplus-fair quanta);
* :class:`~repro.sim.system.SimulatedSystem` — workload execution with
  precedence-respecting job dispatch and latency metrics.
"""

from repro.sim.engine import EventHandle, SimulationEngine
from repro.sim.jobs import Job, JobSet
from repro.sim.metrics import LatencyRecorder
from repro.sim.resources import FlowState, GPSResource, QuantumResource
from repro.sim.system import SimulatedSystem

__all__ = [
    "SimulationEngine",
    "EventHandle",
    "Job",
    "JobSet",
    "LatencyRecorder",
    "GPSResource",
    "QuantumResource",
    "FlowState",
    "SimulatedSystem",
]
