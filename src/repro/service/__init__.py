"""Always-on allocation service: a live LLA solve behind a churn/query API.

See :mod:`repro.service.service` for the service itself and
:mod:`repro.service.cache` for the fingerprint-keyed structure cache it
rebuilds through on churn.
"""

from repro.service.cache import StructureCache
from repro.service.service import (
    AllocationService,
    AllocationView,
    ServiceConfig,
    ServiceStats,
)

__all__ = [
    "AllocationService",
    "AllocationView",
    "ServiceConfig",
    "ServiceStats",
    "StructureCache",
]
