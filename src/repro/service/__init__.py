"""Always-on allocation service: a live LLA solve behind a churn/query API.

See :mod:`repro.service.service` for the service itself,
:mod:`repro.service.cache` for the fingerprint-keyed structure cache it
rebuilds through on churn, and :mod:`repro.service.supervisor` for the
hardened (watchdog / backpressure / brownout) wrapper with its
supporting :mod:`~repro.service.retry`, :mod:`~repro.service.churnqueue`,
:mod:`~repro.service.brownout`, and :mod:`~repro.service.faults`
modules.
"""

from repro.service.brownout import BrownoutConfig, BrownoutController
from repro.service.cache import StructureCache
from repro.service.churnqueue import ChurnEvent, ChurnQueue
from repro.service.faults import ServiceFaultInjector
from repro.service.retry import CircuitBreaker, Retrier, RetryPolicy
from repro.service.service import (
    AllocationService,
    AllocationView,
    ServiceConfig,
    ServiceStats,
)
from repro.service.supervisor import (
    HardeningConfig,
    SupervisedService,
    SupervisedStats,
    Watchdog,
)

__all__ = [
    "AllocationService",
    "AllocationView",
    "BrownoutConfig",
    "BrownoutController",
    "ChurnEvent",
    "ChurnQueue",
    "CircuitBreaker",
    "HardeningConfig",
    "Retrier",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceFaultInjector",
    "ServiceStats",
    "StructureCache",
    "SupervisedService",
    "SupervisedStats",
    "Watchdog",
]
