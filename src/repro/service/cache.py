"""LRU cache of compiled task-set structures, keyed by fingerprint.

Under churn the always-on service rebuilds its optimizer on every task
arrival/departure.  Compiling a :class:`TaskSetStructure` is the dominant
rebuild cost for the vectorized backend, and churn is often *oscillatory*
(a task leaves and re-registers, an A/B flip alternates two
configurations), so the same problem shapes recur.  The cache keys
compiled structures by the canonical task-set fingerprint
(:func:`~repro.model.fingerprint.taskset_fingerprint`) plus the latency
clamp factor: fingerprint equality guarantees identical orderings,
incidence *and* model coefficients, so a cached structure is
interchangeable with a fresh compile after rebinding it to the new
(equivalent) task-set object and refreshing its model arrays.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.core.structure import TaskSetStructure, compile_structure
from repro.errors import ServiceError
from repro.model.fingerprint import taskset_fingerprint
from repro.model.task import TaskSet

__all__ = ["StructureCache"]


class StructureCache:
    """Bounded LRU of :class:`TaskSetStructure` by (fingerprint, clamp)."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ServiceError(
                f"cache capacity must be >= 1, got {capacity!r}"
            )
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Tuple[str, float], TaskSetStructure]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, taskset: TaskSet, max_latency_factor: float = 1.0,
            fingerprint: Optional[str] = None) -> TaskSetStructure:
        """A compiled structure for ``taskset``, cached when possible.

        ``fingerprint`` may be passed in when the caller already computed
        it (the service computes one per churn event anyway).  On a hit
        the cached structure is rebound to ``taskset`` and its model
        arrays refreshed — fingerprint equality makes the static shape
        interchangeable, and the refresh is cheap relative to a compile.
        """
        if fingerprint is None:
            fingerprint = taskset_fingerprint(taskset)
        key = (fingerprint, float(max_latency_factor))
        structure = self._entries.get(key)
        if structure is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            structure.taskset = taskset
            structure.refresh_model()
            return structure
        self.misses += 1
        structure = compile_structure(
            taskset, max_latency_factor=max_latency_factor
        )
        self._entries[key] = structure
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return structure

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
