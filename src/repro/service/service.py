"""The always-on allocation service (§4.4's "running continuously" mode).

The paper frames LLA as an offline solve, but its deployment story is a
long-running control loop: tasks arrive and leave while prices keep
iterating, and the current primal iterate *is* the allocation the system
enforces.  :class:`AllocationService` is that loop:

* **churn API** — :meth:`register` / :meth:`deregister` /
  :meth:`update_task` / :meth:`set_availability` mutate the live workload.
  Every churn event recompiles the task set through a fingerprint-keyed
  :class:`~repro.service.cache.StructureCache` and builds a fresh
  optimizer **warm-started from the surviving resources' live prices**
  (new resources fall back to the
  :func:`~repro.core.warmstart.warm_start_resource_prices` estimate) —
  re-convergence after churn costs a fraction of a cold restart;
* **query API** — :meth:`query` answers allocation lookups from the
  current iterate without touching the optimization, so query throughput
  is decoupled from convergence;
* **admission control** — arriving tasks are screened with the sound
  closed-form certificate
  (:func:`~repro.analysis.admission.certify_infeasible`); a provably
  infeasible task set is rejected before it can poison the live solve;
* **snapshots** — :meth:`snapshot` / :meth:`restore` reuse the
  distributed :class:`~repro.distributed.checkpoint.CheckpointStore`,
  stamped with the task-set fingerprint so a snapshot taken for a
  different problem demotes to a cold reset instead of restoring garbage.

Drive it synchronously with :meth:`step` (deterministic — experiments and
benchmarks do this) or asynchronously with :meth:`run`, which iterates in
batches and yields to the event loop between them so registrations and
queries interleave with the optimization.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.admission import AdmissionDecision, certify_infeasible
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.structure import (
    TaskSetStructure,
    structure_from_dict,
    structure_to_dict,
)
from repro.core.warmstart import warm_start_resource_prices
from repro.distributed.checkpoint import CheckpointStore
from repro.errors import ModelError, ServiceError
from repro.model.fingerprint import taskset_fingerprint
from repro.model.resources import Resource
from repro.model.task import Task, TaskSet
from repro.model.utility import (
    ExponentialUtility,
    InelasticUtility,
    LinearUtility,
    LogUtility,
    QuadraticUtility,
    UtilityFunction,
)
from repro.service.cache import StructureCache
from repro.service.churnqueue import ChurnEvent
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["ServiceConfig", "AllocationService", "AllocationView",
           "ServiceStats"]

#: CheckpointStore agent key for service snapshots.
_SNAPSHOT_AGENT = "service"


@dataclass
class ServiceConfig:
    """Tunables of an :class:`AllocationService`.

    Attributes
    ----------
    backend:
        Optimizer backend for the live solve (``"vectorized"`` by
        default — the service exists to run continuously, so the batched
        kernel's per-iteration cost matters).
    admission_control:
        Screen arriving tasks with the closed-form infeasibility
        certificate before rebuilding.
    warm_start_churn:
        Warm-start rebuilt optimizers from the previous optimizer's live
        resource prices (the service's whole point; ``False`` exists so
        benchmarks can measure the cold alternative).
    cache_capacity:
        Entries in the compiled-structure LRU.
    batch_size:
        Optimizer iterations per :meth:`run` slice between event-loop
        yields.
    shards:
        Maximum shard count for the live solve (vectorized backend only;
        see :mod:`repro.core.sharding`).  Sharding partitions the compiled
        structure by resource-connectivity components, so iterates are
        bitwise-identical to the unsharded solve; ``1`` (default) runs the
        plain kernel.
    shard_mode:
        ``"serial"`` or ``"processes"`` — forwarded to
        :attr:`~repro.core.optimizer.LLAConfig.shard_mode`.
    lla:
        Optimizer configuration; ``None`` builds the paper defaults on
        the configured backend.  When given, its ``backend``/``shards``/
        ``shard_mode`` must match the service's, and its ``step_policy``
        must be ``None`` (a shared policy object would leak step-size
        escalation across churn epochs).
    """

    backend: str = "vectorized"
    admission_control: bool = True
    warm_start_churn: bool = True
    cache_capacity: int = 64
    batch_size: int = 32
    shards: int = 1
    shard_mode: str = "serial"
    lla: Optional[LLAConfig] = None

    def __post_init__(self) -> None:
        """Reject inconsistent knobs at construction (REP008)."""
        if self.backend not in ("scalar", "vectorized"):
            raise ServiceError(
                f"unknown backend {self.backend!r}; "
                "expected 'scalar' or 'vectorized'"
            )
        if self.cache_capacity < 1:
            raise ServiceError(
                f"cache_capacity must be >= 1, got {self.cache_capacity!r}"
            )
        if self.batch_size < 1:
            raise ServiceError(
                f"batch_size must be >= 1, got {self.batch_size!r}"
            )
        if self.shards < 1:
            raise ServiceError(
                f"shards must be >= 1, got {self.shards!r}"
            )
        if self.shards > 1 and self.backend != "vectorized":
            raise ServiceError(
                "shards > 1 requires the vectorized backend, "
                f"got backend={self.backend!r}"
            )
        if self.shard_mode not in ("serial", "processes"):
            raise ServiceError(
                f"unknown shard_mode {self.shard_mode!r}; "
                "expected 'serial' or 'processes'"
            )
        if self.lla is not None:
            if self.lla.backend != self.backend:
                raise ServiceError(
                    f"lla.backend {self.lla.backend!r} contradicts service "
                    f"backend {self.backend!r}"
                )
            if self.lla.shards != self.shards or \
                    self.lla.shard_mode != self.shard_mode:
                raise ServiceError(
                    f"lla sharding ({self.lla.shards!r}, "
                    f"{self.lla.shard_mode!r}) contradicts service sharding "
                    f"({self.shards!r}, {self.shard_mode!r})"
                )
            if self.lla.step_policy is not None:
                raise ServiceError(
                    "lla.step_policy must be None for the service: a shared "
                    "policy object would carry step-size escalation across "
                    "churn epochs"
                )

    def optimizer_config(self) -> LLAConfig:
        """The effective per-epoch optimizer configuration."""
        if self.lla is not None:
            return self.lla
        return LLAConfig(backend=self.backend, shards=self.shards,
                         shard_mode=self.shard_mode)


@dataclass(frozen=True)
class AllocationView:
    """One task's allocation as of the current iterate."""

    task: str
    latencies: Dict[str, float]
    aggregated_latency: float
    utility: float
    meets_critical_time: bool
    iteration: int
    epoch: int
    converged: bool
    #: True when the view was answered from the last known-good
    #: allocation by a degraded (browned-out) supervised service rather
    #: than the live iterate.
    degraded: bool = False


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate service health, as exposed by :meth:`stats`."""

    tasks: int
    resources: int
    iterations: int
    epoch: int
    churn_events: int
    queries: int
    admission_rejections: int
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    converged: bool
    last_reconvergence_rounds: Optional[int]
    reconvergence_rounds: Tuple[int, ...]
    snapshot_fallbacks: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tasks": self.tasks,
            "resources": self.resources,
            "iterations": self.iterations,
            "epoch": self.epoch,
            "churn_events": self.churn_events,
            "queries": self.queries,
            "admission_rejections": self.admission_rejections,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "converged": self.converged,
            "last_reconvergence_rounds": self.last_reconvergence_rounds,
            "reconvergence_rounds": list(self.reconvergence_rounds),
            "snapshot_fallbacks": self.snapshot_fallbacks,
        }


def _retarget_utility(utility: UtilityFunction,
                      critical_time: float) -> UtilityFunction:
    """The same utility family re-anchored at a new critical time."""
    if isinstance(utility, LinearUtility):
        return LinearUtility(critical_time, k=utility.k, slope=utility.slope)
    if isinstance(utility, LogUtility):
        return LogUtility(critical_time, scale=utility.scale,
                          softness=utility.softness)
    if isinstance(utility, QuadraticUtility):
        return QuadraticUtility(critical_time, u_max=utility.u_max,
                                a=utility.a)
    if isinstance(utility, ExponentialUtility):
        return ExponentialUtility(critical_time, u_max=utility.u_max,
                                  tau=utility.tau)
    if isinstance(utility, InelasticUtility):
        return InelasticUtility(critical_time, u_max=utility.u_max)
    raise ServiceError(
        f"cannot retarget utility of type {type(utility).__name__}; "
        "pass an explicit utility to update_task"
    )


def _mutated_task(old: Task, critical_time: Optional[float],
                  utility: Optional[UtilityFunction]) -> Task:
    """``old`` with its critical time and/or utility replaced (the
    utility re-anchored within its family when only the time moves)."""
    new_crit = old.critical_time if critical_time is None \
        else float(critical_time)
    new_utility = utility
    if new_utility is None:
        new_utility = old.utility if critical_time is None \
            else _retarget_utility(old.utility, new_crit)
    return Task(
        name=old.name,
        subtasks=list(old.subtasks),
        graph=old.graph,
        critical_time=new_crit,
        utility=new_utility,
        variant=old.variant,
        trigger=old.trigger,
    )


class AllocationService:
    """A live LLA optimizer behind a churn/query/admission API."""

    def __init__(self, resources: List[Resource],
                 tasks: Optional[List[Task]] = None,
                 config: Optional[ServiceConfig] = None,
                 telemetry: Optional[Telemetry] = None,
                 snapshots: Optional[CheckpointStore] = None) -> None:
        if not resources:
            raise ServiceError("service needs at least one resource")
        self.config = config or ServiceConfig()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._resources: Dict[str, Resource] = {}
        for resource in resources:
            if resource.name in self._resources:
                raise ServiceError(f"duplicate resource {resource.name!r}")
            self._resources[resource.name] = resource
        self._tasks: Dict[str, Task] = {}
        self._cache = StructureCache(capacity=self.config.cache_capacity)
        # Injectable so the hardened layer can supply a file-backed store
        # whose snapshots survive a process restart.
        self._snapshots = snapshots if snapshots is not None \
            else CheckpointStore()
        self._optimizer: Optional[LLAOptimizer] = None
        self._taskset: Optional[TaskSet] = None
        self._fingerprint: Optional[str] = None
        self._running = False
        self._metrics: Optional[Dict[str, Any]] = None
        # Epoch bookkeeping: an epoch spans one workload generation.
        self._epoch = 0
        self._epoch_iterations = 0
        self._reconverged = False
        self._total_iterations = 0
        self._churn_events = 0
        self._queries = 0
        self._admission_rejections = 0
        self._snapshot_fallbacks = 0
        self._reconvergence_rounds: List[int] = []
        # The service outlives any single optimizer, so it owns the trace
        # clock: one monotone iteration count across churn epochs.
        tracer = self.telemetry.tracer
        if tracer.enabled and not tracer.clock_injected:
            tracer.set_clock(lambda: float(self._total_iterations))
        for task in tasks or ():
            decision = self.register(task)
            if not decision.admitted:
                raise ServiceError(
                    f"initial task {task.name!r} rejected: {decision.reason}"
                )

    # -- telemetry ---------------------------------------------------------------

    def _metric(self, name: str) -> Any:
        if self._metrics is None:
            registry = self.telemetry.registry
            self._metrics = {
                "queries": registry.counter(
                    "service.queries_total", "allocation queries answered"),
                "churn": registry.counter(
                    "service.churn_total", "workload churn events applied"),
                "rejections": registry.counter(
                    "service.admission_rejections_total",
                    "tasks rejected by admission control"),
                "fallbacks": registry.counter(
                    "service.snapshot_fallbacks_total",
                    "snapshot restores demoted to cold resets by a "
                    "fingerprint mismatch"),
                "tasks": registry.gauge(
                    "service.tasks", "tasks currently registered"),
                "reconv": registry.gauge(
                    "service.reconvergence_rounds",
                    "iterations the last churn epoch took to re-converge"),
                "hit_rate": registry.gauge(
                    "service.cache_hit_rate",
                    "structure-cache hit rate since service start"),
                "converged": registry.gauge(
                    "service.converged",
                    "whether the current epoch has re-converged (0/1)"),
                "qps": registry.gauge(
                    "service.qps",
                    "queries per second over the last run() slice"),
            }
        return self._metrics[name]

    # -- churn API ---------------------------------------------------------------

    def _reject(self, name: str, reason: str) -> AdmissionDecision:
        """Count and trace an admission rejection."""
        self._admission_rejections += 1
        if self.telemetry.enabled:
            self._metric("rejections").inc()
            if self.telemetry.tracer.enabled:
                self.telemetry.tracer.emit(
                    "admission_rejected", task=name, reason=reason,
                )
        return AdmissionDecision(task=name, admitted=False, reason=reason)

    def register(self, task: Task) -> AdmissionDecision:
        """Admit and install a task; rejection leaves the service as-is."""
        reason = self._admission_reason(task)
        if reason is not None:
            return self._reject(task.name, reason)
        self._tasks[task.name] = task
        self._rebuild()
        return AdmissionDecision(
            task=task.name, admitted=True,
            reason="no infeasibility certificate",
        )

    def deregister(self, name: str) -> Task:
        """Remove a task; the survivors keep their live prices."""
        task = self._tasks.pop(name, None)
        if task is None:
            raise ServiceError(f"no task named {name!r} is registered")
        self._rebuild()
        return task

    def update_task(self, name: str,
                    critical_time: Optional[float] = None,
                    utility: Optional[UtilityFunction] = None,
                    ) -> AdmissionDecision:
        """Mutate a registered task's critical time and/or utility.

        When only ``critical_time`` is given, the utility is re-anchored
        at the new critical time within its family.  The mutated task
        passes through admission control like an arrival; on rejection
        the old task stays registered and live.
        """
        old = self._tasks.get(name)
        if old is None:
            raise ServiceError(f"no task named {name!r} is registered")
        if critical_time is None and utility is None:
            raise ServiceError(
                "update_task needs a critical_time and/or a utility"
            )
        replacement = _mutated_task(old, critical_time, utility)
        del self._tasks[name]
        reason = self._admission_reason(replacement)
        if reason is not None:
            self._tasks[name] = old  # restore; nothing changed
            return self._reject(name, reason)
        self._tasks[name] = replacement
        self._rebuild()
        return AdmissionDecision(
            task=name, admitted=True, reason="no infeasibility certificate",
        )

    def set_availability(self, resource: str, availability: float) -> None:
        """Apply a capacity change (e.g. a shock) to a live resource."""
        old = self._resources.get(resource)
        if old is None:
            raise ServiceError(f"no resource named {resource!r}")
        self._resources[resource] = Resource(
            name=old.name, kind=old.kind, availability=availability,
            lag=old.lag, metadata=dict(old.metadata),
        )
        if self._tasks:
            self._rebuild()

    def apply_batch(self,
                    events: List[ChurnEvent]) -> List[AdmissionDecision]:
        """Apply a drained (coalesced) churn batch through **one**
        recompile.

        This is the storm-coalescing payoff: N raw events collapse to at
        most one slot per subject in the
        :class:`~repro.service.churnqueue.ChurnQueue`, and the whole
        batch is applied against the task map before a single
        :meth:`_rebuild`.  Each task-shaped event yields an
        :class:`AdmissionDecision`; a rejection restores that subject
        and the batch continues.  A ``replace`` (deregister+register
        coalesced) that fails admission keeps the previously live task.
        """
        decisions: List[AdmissionDecision] = []
        mutated = False
        for event in events:
            if event.kind == "deregister":
                # Tolerant of already-gone tasks: a storm batch may
                # carry a departure the producer lost the race on.
                if self._tasks.pop(event.key, None) is not None:
                    mutated = True
            elif event.kind == "availability":
                old_res = self._resources.get(event.key)
                if old_res is None:
                    raise ServiceError(f"no resource named {event.key!r}")
                assert event.availability is not None
                self._resources[event.key] = Resource(
                    name=old_res.name, kind=old_res.kind,
                    availability=float(event.availability),
                    lag=old_res.lag, metadata=dict(old_res.metadata),
                )
                mutated = True
            elif event.kind in ("register", "replace"):
                assert event.task is not None
                candidate = event.task
                if event.critical_time is not None or \
                        event.utility is not None:
                    candidate = _mutated_task(
                        candidate, event.critical_time, event.utility,
                    )
                old = self._tasks.pop(event.key, None)
                reason = self._admission_reason(candidate)
                if reason is not None:
                    if old is not None:
                        self._tasks[event.key] = old  # keep the live body
                    decisions.append(self._reject(event.key, reason))
                    continue
                self._tasks[event.key] = candidate
                mutated = True
                decisions.append(AdmissionDecision(
                    task=event.key, admitted=True,
                    reason="no infeasibility certificate",
                ))
            else:  # update
                old = self._tasks.get(event.key)
                if old is None:
                    decisions.append(self._reject(
                        event.key,
                        f"no task named {event.key!r} is registered",
                    ))
                    continue
                replacement = _mutated_task(
                    old, event.critical_time, event.utility,
                )
                del self._tasks[event.key]
                reason = self._admission_reason(replacement)
                if reason is not None:
                    self._tasks[event.key] = old
                    decisions.append(self._reject(event.key, reason))
                    continue
                self._tasks[event.key] = replacement
                mutated = True
                decisions.append(AdmissionDecision(
                    task=event.key, admitted=True,
                    reason="no infeasibility certificate",
                ))
        if mutated:
            self._rebuild()
        return decisions

    def _admission_reason(self, task: Task) -> Optional[str]:
        """Why ``task`` cannot be admitted; ``None`` when it can."""
        if task.name in self._tasks:
            return f"a task named {task.name!r} is already registered"
        for sub in task.subtasks:
            if sub.resource not in self._resources:
                return (
                    f"subtask {sub.name!r} references unknown resource "
                    f"{sub.resource!r}"
                )
        candidate = dict(self._tasks)
        candidate[task.name] = task
        try:
            taskset = self._make_taskset(candidate)
        except ModelError as exc:
            return str(exc)
        if self.config.admission_control:
            certificate = certify_infeasible(taskset)
            if certificate is not None:
                return f"provably infeasible: {certificate}"
        return None

    def _make_taskset(self, tasks: Mapping[str, Task]) -> TaskSet:
        # Canonical (name-sorted) order: the task set a churn sequence
        # produces depends only on its membership, never on arrival
        # order, so oscillatory churn reproduces fingerprints exactly
        # and the structure cache can hit.
        return TaskSet(sorted(tasks.values(), key=lambda t: t.name),
                       sorted(self._resources.values(),
                              key=lambda r: r.name),
                       allow_shared_resources=True)

    # -- rebuild (the churn path) ------------------------------------------------

    def _rebuild(self) -> None:
        """Recompile the workload and swap in a warm-started optimizer."""
        live_prices: Dict[str, float] = {}
        if self._optimizer is not None:
            live_prices = dict(self._optimizer.resource_prices.prices)
        had_optimizer = self._optimizer is not None
        if not self._tasks:
            self._optimizer = None
            self._taskset = None
            self._fingerprint = None
        else:
            taskset = self._make_taskset(self._tasks)
            fingerprint = taskset_fingerprint(taskset)
            lla = self.config.optimizer_config()
            structure: Optional[TaskSetStructure] = None
            if lla.backend == "vectorized":
                structure = self._cache.get(
                    taskset, max_latency_factor=lla.max_latency_factor,
                    fingerprint=fingerprint,
                )
            optimizer = LLAOptimizer(
                taskset, lla, telemetry=self.telemetry, structure=structure,
            )
            if self.config.warm_start_churn and live_prices:
                fallback = warm_start_resource_prices(
                    taskset, default=lla.initial_resource_price,
                )
                optimizer.adopt_prices({
                    rname: live_prices.get(rname, fallback[rname])
                    for rname in taskset.resources
                })
            self._optimizer = optimizer
            self._taskset = taskset
            self._fingerprint = fingerprint
        if had_optimizer or self._optimizer is not None:
            self._churn_events += 1
        self._epoch += 1
        self._epoch_iterations = 0
        self._reconverged = False
        if self.telemetry.enabled:
            self._metric("churn").inc()
            self._metric("tasks").set(len(self._tasks))
            self._metric("hit_rate").set(self._cache.hit_rate)
            self._metric("converged").set(0.0)
            if self.telemetry.tracer.enabled:
                self.telemetry.tracer.emit(
                    "churn", epoch=self._epoch, tasks=len(self._tasks),
                    warm=bool(self.config.warm_start_churn and live_prices),
                    cache_hits=self._cache.hits,
                    cache_misses=self._cache.misses,
                )

    # -- driving -----------------------------------------------------------------

    def step(self, iterations: int = 1) -> int:
        """Advance the live solve; returns iterations actually run (0 when
        no tasks are registered)."""
        if iterations < 1:
            raise ServiceError(f"iterations must be >= 1, got {iterations!r}")
        optimizer = self._optimizer
        if optimizer is None:
            return 0
        for _ in range(iterations):
            optimizer.step()
            self._total_iterations += 1
            self._epoch_iterations += 1
            if not self._reconverged and optimizer.detector.converged():
                self._reconverged = True
                self._reconvergence_rounds.append(self._epoch_iterations)
                if self.telemetry.enabled:
                    self._metric("reconv").set(self._epoch_iterations)
                    self._metric("converged").set(1.0)
                    if self.telemetry.tracer.enabled:
                        self.telemetry.tracer.emit(
                            "service_reconverged", epoch=self._epoch,
                            rounds=self._epoch_iterations,
                        )
        return iterations

    def run_to_convergence(self, budget: int = 5000) -> Optional[int]:
        """Step until the current epoch re-converges; rounds taken, or
        ``None`` when the budget runs out (or no tasks are registered)."""
        if self._optimizer is None:
            return None
        while not self._reconverged and budget > 0:
            chunk = min(self.config.batch_size, budget)
            self.step(chunk)
            budget -= chunk
        return self._reconvergence_rounds[-1] if self._reconverged else None

    async def run(self, iterations: Optional[int] = None) -> int:
        """Drive the optimizer cooperatively on the running event loop.

        Runs ``iterations`` optimizer steps (``None`` = until
        :meth:`stop`), yielding to the event loop after every
        ``batch_size`` so churn and queries interleave with the solve.
        Returns the number of iterations executed.
        """
        if self._running:
            raise ServiceError("service is already running")
        self._running = True
        executed = 0
        queries_before = self._queries
        slice_started = time.perf_counter()
        try:
            while self._running and \
                    (iterations is None or executed < iterations):
                batch = self.config.batch_size
                if iterations is not None:
                    batch = min(batch, iterations - executed)
                ran = self.step(batch) if self._tasks else 0
                executed += ran if ran else batch
                if self.telemetry.enabled:
                    elapsed = time.perf_counter() - slice_started
                    if elapsed > 0.0:
                        self._metric("qps").set(
                            (self._queries - queries_before) / elapsed
                        )
                    queries_before = self._queries
                    slice_started = time.perf_counter()
                await asyncio.sleep(0)
        finally:
            self._running = False
        return executed

    def stop(self) -> None:
        """Ask a concurrent :meth:`run` loop to exit after its batch."""
        self._running = False

    # -- queries -----------------------------------------------------------------

    def query(self, task_name: str) -> AllocationView:
        """The task's allocation under the current iterate.

        On the vectorized backend the answer is read from the compiled
        :class:`~repro.core.structure.TaskSetStructure` ("compile once,
        share everywhere"); the scalar backend falls back to the task
        object graph.
        """
        task = self._tasks.get(task_name)
        optimizer = self._optimizer
        if task is None or optimizer is None:
            raise ServiceError(f"no task named {task_name!r} is registered")
        self._queries += 1
        if self.telemetry.enabled:
            self._metric("queries").inc()
        structure = optimizer.structure
        if structure is not None:
            return self._query_from_structure(structure, task_name, optimizer)
        latencies = {
            name: optimizer.latencies[name] for name in task.subtask_names
        }
        return AllocationView(
            task=task_name,
            latencies=latencies,
            aggregated_latency=task.aggregated_latency(latencies),  # statan: disable=REP016 -- scalar query fallback when no structure is bound
            utility=task.utility_value(latencies),  # statan: disable=REP016 -- scalar query fallback when no structure is bound
            meets_critical_time=task.meets_critical_time(latencies),
            iteration=optimizer.iteration,
            epoch=self._epoch,
            converged=self._reconverged,
        )

    def _query_from_structure(self, structure: TaskSetStructure,
                              task_name: str,
                              optimizer: LLAOptimizer) -> AllocationView:
        """Answer a query from the compiled arrays, no object traversal.

        Matches the scalar path value-for-value: the weighted aggregate
        and per-path sums run as sequential Python float additions in the
        same operand order :meth:`Task.aggregated_latency` and the graph's
        critical-path walk use.
        """
        s = structure
        t = s.task_index(task_name)
        ssl = s.task_subtask_slice(t)
        names = s.subtask_names[ssl.start:ssl.stop]
        local = [optimizer.latencies[name] for name in names]
        latencies = dict(zip(names, local))
        agg = 0.0
        for w, lat in zip(s.weights[ssl.start:ssl.stop].tolist(), local):
            agg += w * lat
        if int(s.ut_kind[t]) == 0:  # linear
            utility = float(s.ut_kc[t]) - float(s.ut_slope[t]) * agg
        else:  # inelastic
            utility = float(s.ut_umax[t]) \
                if agg <= float(s.ut_crit[t]) else 0.0
        psl = s.task_path_slice(t)
        # The flattened path membership is grouped by ascending path id,
        # so the task's entries form one contiguous run.
        lo = int(np.searchsorted(s.path_ids_flat, psl.start, side="left"))
        hi = int(np.searchsorted(s.path_ids_flat, psl.stop, side="left"))
        sums = [0.0] * (psl.stop - psl.start)
        for flat in range(lo, hi):
            path = int(s.path_ids_flat[flat]) - psl.start
            sums[path] += local[int(s.path_sub_flat[flat]) - ssl.start]
        worst = max(sums)
        critical_time = float(s.path_crit[psl.start])
        return AllocationView(
            task=task_name,
            latencies=latencies,
            aggregated_latency=agg,
            utility=utility,
            meets_critical_time=worst <= critical_time,
            iteration=optimizer.iteration,
            epoch=self._epoch,
            converged=self._reconverged,
        )

    def allocations(self) -> Dict[str, float]:
        """Every subtask's latency under the current iterate."""
        if self._optimizer is None:
            return {}
        return dict(self._optimizer.latencies)

    @property
    def tasks(self) -> Tuple[str, ...]:
        return tuple(self._tasks)

    def task(self, name: str) -> Task:
        """The registered task object named ``name``."""
        task = self._tasks.get(name)
        if task is None:
            raise ServiceError(f"no task named {name!r} is registered")
        return task

    @property
    def taskset(self) -> Optional[TaskSet]:
        return self._taskset

    @property
    def fingerprint(self) -> Optional[str]:
        return self._fingerprint

    @property
    def converged(self) -> bool:
        return self._reconverged

    @property
    def cache(self) -> StructureCache:
        return self._cache

    @property
    def snapshots(self) -> CheckpointStore:
        return self._snapshots

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> None:
        """Checkpoint the live dual state, stamped with the fingerprint.

        On the vectorized backend the snapshot also embeds the compiled
        structure's serialized payload (:func:`structure_to_dict`) — the
        payload carries its own content fingerprint, so :meth:`restore`
        can detect a corrupted or hand-edited compiled artifact and
        demote to a cold reset instead of resuming on garbage arrays.
        """
        optimizer = self._optimizer
        if optimizer is None:
            raise ServiceError("nothing to snapshot: no tasks registered")
        state: Dict[str, Any] = {
            "resource_prices": dict(optimizer.resource_prices.prices),
        }
        structure = optimizer.structure
        if structure is not None:
            state["structure"] = structure_to_dict(structure)
        self._snapshots.save(
            _SNAPSHOT_AGENT, self._total_iterations, state,
            fingerprint=self._fingerprint,
        )

    def restore(self) -> bool:
        """Warm-restore the last snapshot into the live optimizer.

        Returns ``True`` on a warm restore.  A snapshot stamped for a
        different task set (the workload churned since :meth:`snapshot`)
        demotes to a cold reset — restoring its prices would resume a
        different problem's dual state — and the fallback is counted.
        """
        optimizer = self._optimizer
        if optimizer is None:
            raise ServiceError("nothing to restore into: no tasks registered")
        checkpoint = self._snapshots.load(
            _SNAPSHOT_AGENT, fingerprint=self._fingerprint,
        )
        self._epoch_iterations = 0
        self._reconverged = False
        optimizer.detector.reset()
        if checkpoint is not None and "structure" in checkpoint.state:
            # The embedded compiled artifact carries a content
            # fingerprint; a payload that fails verification means the
            # snapshot bytes were damaged after the store's own integrity
            # check passed — treat the whole snapshot as untrustworthy.
            try:
                structure_from_dict(checkpoint.state["structure"])
            except ModelError:
                checkpoint = None
        if checkpoint is None:
            optimizer.reset()
            self._snapshot_fallbacks += 1
            if self.telemetry.enabled:
                self._metric("fallbacks").inc()
                self._metric("converged").set(0.0)
                if self.telemetry.tracer.enabled:
                    self.telemetry.tracer.emit(
                        "snapshot_fallback", epoch=self._epoch,
                    )
            return False
        optimizer.adopt_prices(checkpoint.state["resource_prices"])
        if self.telemetry.enabled:
            self._metric("converged").set(0.0)
        return True

    # -- stats -------------------------------------------------------------------

    def stats(self) -> ServiceStats:
        return ServiceStats(
            tasks=len(self._tasks),
            resources=len(self._resources),
            iterations=self._total_iterations,
            epoch=self._epoch,
            churn_events=self._churn_events,
            queries=self._queries,
            admission_rejections=self._admission_rejections,
            cache_hits=self._cache.hits,
            cache_misses=self._cache.misses,
            cache_hit_rate=self._cache.hit_rate,
            converged=self._reconverged,
            last_reconvergence_rounds=(
                self._reconvergence_rounds[-1]
                if self._reconvergence_rounds else None
            ),
            reconvergence_rounds=tuple(self._reconvergence_rounds),
            snapshot_fallbacks=self._snapshot_fallbacks,
        )
