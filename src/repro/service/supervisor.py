"""Supervised control loop: watchdog, churn backpressure, brownout.

:class:`~repro.service.service.AllocationService` assumes a polite world —
churn arrives one event at a time, the optimizer never wedges, snapshots
on disk are well-formed.  :class:`SupervisedService` wraps it in the
machinery a real deployment needs (the same posture PR 3's fault plans
forced onto the distributed runtime):

* a **tick-driven supervisor** — :meth:`tick` drains queued churn as one
  batched rebuild, advances the optimizer, feeds a :class:`Watchdog`
  that restarts from the last fingerprint-valid snapshot when the loop
  stops making progress (``service.supervisor_restarts_total``), and
  takes periodic snapshots;
* **bounded churn with storm coalescing** — producers go through
  :meth:`submit` into a :class:`~repro.service.churnqueue.ChurnQueue`;
  a storm of N events for the same tasks collapses to one recompile,
  and past the hard cap new subjects are shed, not buffered to OOM;
* **retry + circuit breaker around checkpoint I/O** — snapshot/restore
  run under a seeded-jitter :class:`~repro.service.retry.Retrier` with
  each attempt guarded by a :class:`~repro.service.retry.CircuitBreaker`
  on the supervisor's tick clock, so a dead checkpoint volume degrades
  to counted skips instead of a retry hot loop;
* **brownout degradation** — consecutive stressed ticks (active stall,
  sheds, deep queue, overdue re-convergence) flip the service into
  degraded mode via :class:`~repro.service.brownout.BrownoutController`
  hysteresis: queries are answered from the **last critical-time-feasible
  allocation** (views stamped ``degraded=True``), new registrations are
  shed, and the mode exits only after a run of calm ticks
  (``service_degraded`` transitions, ``service.degraded`` gauge).

Everything is deterministic: the trace clock is the tick counter, retry
jitter is seeded, and fault injection (:mod:`repro.service.faults`) is
keyed by tick — two runs of the same scenario produce identical traces.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.admission import AdmissionDecision
from repro.distributed.checkpoint import CheckpointStore
from repro.distributed.faults import ChurnStorm, FaultPlan
from repro.errors import BreakerOpenError, ReproError, ServiceError
from repro.model.graph import SubtaskGraph
from repro.model.resources import Resource
from repro.model.task import Subtask, Task
from repro.model.utility import LinearUtility, UtilityFunction
from repro.service.brownout import BrownoutConfig, BrownoutController
from repro.service.churnqueue import ChurnEvent, ChurnQueue
from repro.service.retry import CircuitBreaker, Retrier, RetryPolicy
from repro.service.service import (
    AllocationService,
    AllocationView,
    ServiceConfig,
    _SNAPSHOT_AGENT,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["HardeningConfig", "Watchdog", "SupervisedService",
           "SupervisedStats"]


@dataclass
class HardeningConfig:
    """Tunables of a :class:`SupervisedService`.

    Attributes
    ----------
    queue_capacity:
        Hard cap on distinct pending churn subjects; beyond it new
        subjects are shed.
    stall_deadline:
        Consecutive no-progress ticks before the watchdog fires.
    snapshot_interval:
        Ticks between periodic snapshots (``0`` disables them — and with
        them, warm supervisor restarts).
    snapshot_dir:
        Directory for file-backed snapshots (``None`` = in-memory only).
    retry:
        Retry policy for checkpoint I/O; ``None`` = defaults.
    failure_threshold / breaker_cooldown:
        Circuit-breaker trip count and cooldown (in ticks).
    brownout:
        Hysteresis widths for degraded mode; ``None`` = defaults.
    queue_high_watermark:
        Queue fill fraction that counts as overload stress.
    reconverge_patience:
        Ticks an epoch may stay unconverged before counting as stress.
    seed:
        Seed for the retry-jitter RNG (determinism).
    service:
        Inner :class:`~repro.service.service.ServiceConfig`; ``None`` =
        defaults.
    """

    queue_capacity: int = 32
    stall_deadline: int = 3
    snapshot_interval: int = 10
    snapshot_dir: Optional[str] = None
    retry: Optional[RetryPolicy] = None
    failure_threshold: int = 3
    breaker_cooldown: int = 5
    brownout: Optional[BrownoutConfig] = None
    queue_high_watermark: float = 0.75
    reconverge_patience: int = 50
    seed: int = 0
    service: Optional[ServiceConfig] = None

    def __post_init__(self) -> None:
        """Reject inconsistent knobs at construction (REP008)."""
        if self.queue_capacity < 1:
            raise ServiceError(
                f"queue_capacity must be >= 1, got {self.queue_capacity!r}"
            )
        if self.stall_deadline < 1:
            raise ServiceError(
                f"stall_deadline must be >= 1, got {self.stall_deadline!r}"
            )
        if self.snapshot_interval < 0:
            raise ServiceError(
                f"snapshot_interval must be >= 0, "
                f"got {self.snapshot_interval!r}"
            )
        if self.failure_threshold < 1:
            raise ServiceError(
                f"failure_threshold must be >= 1, "
                f"got {self.failure_threshold!r}"
            )
        if self.breaker_cooldown < 1:
            raise ServiceError(
                f"breaker_cooldown must be >= 1, "
                f"got {self.breaker_cooldown!r}"
            )
        if not 0.0 < self.queue_high_watermark <= 1.0:
            raise ServiceError(
                f"queue_high_watermark must be in (0, 1], "
                f"got {self.queue_high_watermark!r}"
            )
        if self.reconverge_patience < 1:
            raise ServiceError(
                f"reconverge_patience must be >= 1, "
                f"got {self.reconverge_patience!r}"
            )
        if self.seed < 0:
            # default_rng rejects negative seeds, but only at first use —
            # hundreds of ticks after construction on a quiet service.
            raise ServiceError(f"seed must be >= 0, got {self.seed!r}")


class Watchdog:
    """Detects a wedged control loop from a progress counter.

    :meth:`beat` is fed a monotone progress indicator (the service's
    total iteration count) once per tick; ``deadline`` consecutive beats
    without movement fire the watchdog (and reset its count, so a stall
    that outlives one restart fires again a deadline later).
    """

    def __init__(self, deadline: int) -> None:
        if deadline < 1:
            raise ServiceError(f"deadline must be >= 1, got {deadline!r}")
        self.deadline = deadline
        self.fires = 0
        self._last: Optional[int] = None
        self._stalled_for = 0

    def beat(self, progress: int) -> bool:
        """Feed one tick's progress; ``True`` when the watchdog fires."""
        if self._last is None or progress != self._last:
            self._last = progress
            self._stalled_for = 0
            return False
        self._stalled_for += 1
        if self._stalled_for >= self.deadline:
            self.fires += 1
            self._stalled_for = 0
            return True
        return False


@dataclass(frozen=True)
class SupervisedStats:
    """Aggregate hardened-service health, as exposed by :meth:`stats`."""

    tick: int
    degraded: bool
    supervisor_restarts: int
    watchdog_fires: int
    stall_ticks: int
    storms: int
    queue_depth: int
    queue_max_depth: int
    queue_shed: int
    queue_coalesced: int
    degraded_shed: int
    retries: int
    retries_exhausted: int
    breaker_state: str
    breaker_opens: int
    breaker_short_circuits: int
    checkpoint_failures: int
    snapshot_corruptions: int
    snapshots_taken: int
    live_served: int
    degraded_served: int
    stale_served: int
    failed_queries: int
    brownout_entries: int
    brownout_exits: int
    transitions: Tuple[Tuple[int, str], ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tick": self.tick,
            "degraded": self.degraded,
            "supervisor_restarts": self.supervisor_restarts,
            "watchdog_fires": self.watchdog_fires,
            "stall_ticks": self.stall_ticks,
            "storms": self.storms,
            "queue_depth": self.queue_depth,
            "queue_max_depth": self.queue_max_depth,
            "queue_shed": self.queue_shed,
            "queue_coalesced": self.queue_coalesced,
            "degraded_shed": self.degraded_shed,
            "retries": self.retries,
            "retries_exhausted": self.retries_exhausted,
            "breaker_state": self.breaker_state,
            "breaker_opens": self.breaker_opens,
            "breaker_short_circuits": self.breaker_short_circuits,
            "checkpoint_failures": self.checkpoint_failures,
            "snapshot_corruptions": self.snapshot_corruptions,
            "snapshots_taken": self.snapshots_taken,
            "live_served": self.live_served,
            "degraded_served": self.degraded_served,
            "stale_served": self.stale_served,
            "failed_queries": self.failed_queries,
            "brownout_entries": self.brownout_entries,
            "brownout_exits": self.brownout_exits,
            "transitions": [list(t) for t in self.transitions],
        }


class SupervisedService:
    """An :class:`AllocationService` under supervision (see module doc)."""

    def __init__(self, resources: List[Resource],
                 tasks: Optional[List[Task]] = None,
                 config: Optional[HardeningConfig] = None,
                 telemetry: Optional[Telemetry] = None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        self.config = config or HardeningConfig()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tick = 0
        # The supervisor owns the trace clock (ticks), installed before
        # the inner service can claim it with its iteration count.
        tracer = self.telemetry.tracer
        if tracer.enabled and not tracer.clock_injected:
            tracer.set_clock(lambda: float(self._tick))
        self._store = CheckpointStore(directory=self.config.snapshot_dir)
        self.service = AllocationService(
            resources, tasks, config=self.config.service,
            telemetry=self.telemetry, snapshots=self._store,
        )
        self.queue = ChurnQueue(self.config.queue_capacity)
        self.watchdog = Watchdog(self.config.stall_deadline)
        self.brownout = BrownoutController(self.config.brownout)
        self.retrier = Retrier(self.config.retry, seed=self.config.seed,
                               telemetry=self.telemetry)
        self.breaker = CircuitBreaker(
            self.config.failure_threshold,
            float(self.config.breaker_cooldown),
            clock=lambda: float(self._tick),
            telemetry=self.telemetry, name="checkpoint",
        )
        self.injector = None
        if fault_plan is not None and not fault_plan.is_empty():
            from repro.service.faults import ServiceFaultInjector
            self.injector = ServiceFaultInjector(fault_plan, self)
        # Fault state.
        self._stall_remaining = 0
        self._checkpoint_outage = False
        self._pending_corruptions = 0
        # Last known-good (critical-time-feasible) allocation.
        self._last_good_latencies: Dict[str, float] = {}
        self._last_good_tasks: Dict[str, Task] = {}
        self._last_good_tick: Optional[int] = None
        self._last_good_epoch = 0
        self._last_good_iteration = 0
        # Counters.
        self.supervisor_restarts = 0
        self.stall_ticks = 0
        self.storms = 0
        self.degraded_shed = 0
        self.checkpoint_failures = 0
        self.snapshots_taken = 0
        self.snapshot_corruptions = 0
        self.live_served = 0
        self.degraded_served = 0
        self.stale_served = 0
        self.failed_queries = 0
        self._unconverged_ticks = 0
        self._shed_this_tick = 0
        self._metrics: Optional[Dict[str, Any]] = None
        self._synthetic_serial = 0
        # An initial restore point, so a watchdog fire before the first
        # periodic snapshot can warm-restore instead of cold-resetting.
        if self.service.taskset is not None and self.config.snapshot_interval:
            self._guarded_snapshot()

    # -- telemetry ---------------------------------------------------------------

    def _metric(self, name: str) -> Any:
        if self._metrics is None:
            registry = self.telemetry.registry
            self._metrics = {
                "restarts": registry.counter(
                    "service.supervisor_restarts_total",
                    "watchdog-triggered restarts of the control loop"),
                "degraded": registry.gauge(
                    "service.degraded",
                    "whether the service is in degraded mode (0/1)"),
                "transitions": registry.counter(
                    "service.degraded_transitions_total",
                    "brownout state transitions (either direction)"),
                "shed": registry.counter(
                    "service.churn_shed_total",
                    "churn events shed by backpressure or degraded mode"),
                "storms": registry.counter(
                    "service.churn_storms_total",
                    "churn storms injected or absorbed"),
                "ckpt_failures": registry.counter(
                    "service.checkpoint_failures_total",
                    "checkpoint operations that failed every attempt"),
                "corruptions": registry.counter(
                    "service.snapshot_corruptions_total",
                    "corrupted snapshots detected and demoted to cold"),
                "degraded_queries": registry.counter(
                    "service.degraded_queries_total",
                    "queries answered from the last-good allocation"),
                "queue_depth": registry.gauge(
                    "service.queue_depth",
                    "pending coalesced churn subjects"),
            }
        return self._metrics[name]

    # -- churn producers ---------------------------------------------------------

    def submit(self, event: ChurnEvent) -> bool:
        """Queue a churn event for the next tick's batched rebuild.

        Returns ``False`` when the event was shed: registrations while
        degraded (brownout sheds non-admitted work), or any new subject
        once the queue is at capacity.
        """
        if self.brownout.degraded and event.kind == "register":
            self.degraded_shed += 1
            self._shed_this_tick += 1
            if self.telemetry.enabled:
                self._metric("shed").inc()
                if self.telemetry.tracer.enabled:
                    self.telemetry.tracer.emit(
                        "churn_shed", subject=event.key, reason="degraded",
                    )
            return False
        accepted = self.queue.offer(event)
        if not accepted:
            self._shed_this_tick += 1
            if self.telemetry.enabled:
                self._metric("shed").inc()
                if self.telemetry.tracer.enabled:
                    self.telemetry.tracer.emit(
                        "churn_shed", subject=event.key, reason="capacity",
                    )
        return accepted

    def register(self, task: Task) -> bool:
        return self.submit(ChurnEvent(kind="register", key=task.name,
                                      task=task))

    def deregister(self, name: str) -> bool:
        return self.submit(ChurnEvent(kind="deregister", key=name))

    def update_task(self, name: str,
                    critical_time: Optional[float] = None,
                    utility: Optional[UtilityFunction] = None) -> bool:
        return self.submit(ChurnEvent(kind="update", key=name,
                                      critical_time=critical_time,
                                      utility=utility))

    def set_availability(self, resource: str, availability: float) -> bool:
        return self.submit(ChurnEvent(kind="availability", key=resource,
                                      availability=availability))

    # -- the supervised tick -----------------------------------------------------

    def tick(self) -> None:
        """One control-loop turn: inject due faults, drain churn as one
        batch, advance the solve, feed the watchdog, snapshot, capture
        the last-good allocation, and update the brownout state."""
        restart_due, snapshot_due = self._tick_begin()
        self._apply_pending_corruptions()
        if restart_due:
            self._supervisor_restart()
        if snapshot_due:
            self._guarded_snapshot()
        self._tick_end()

    async def tick_async(self) -> None:
        """:meth:`tick` for an event loop.  The state-mutating tick body
        — fault injection, the churn drain, the optimizer slice — runs
        **on the loop thread**: it shares the :class:`ChurnQueue`, the
        optimizer iterate, and the shed counter with the concurrent
        :meth:`submit` and :meth:`query` callers on that loop, and
        cooperative scheduling is the only synchronization they have.
        (Offloading it to a worker thread would race ``drain`` against
        ``offer`` and let queries observe a half-advanced optimizer.)
        Only the checkpoint file I/O behind restarts and snapshots — the
        part that can actually stall on a slow disk or an injected
        outage — is offloaded via :func:`asyncio.to_thread`; the tick is
        suspended while it runs, so the retrier, breaker, and checkpoint
        state it mutates have no other writer."""
        restart_due, snapshot_due = self._tick_begin()
        if self._pending_corruptions:
            await asyncio.to_thread(self._apply_pending_corruptions)
        if restart_due:
            await asyncio.to_thread(self._supervisor_restart)
        if snapshot_due:
            await asyncio.to_thread(self._guarded_snapshot)
        self._tick_end()

    def _tick_begin(self) -> Tuple[bool, bool]:
        """Everything up to (but not including) the tick's I/O stage —
        injected corruptions, restart, snapshot; returns
        ``(restart_due, snapshot_due)``.  Runs on the event-loop thread
        under :meth:`tick_async`: it mutates state shared with
        concurrent :meth:`submit`/:meth:`query` callers, so it must
        never execute blocking I/O (REP011 enforces this)."""
        self._tick += 1
        self._shed_this_tick = 0
        if self.injector is not None:
            self.injector.apply(self._tick)
        self._drain_churn()
        self._advance()
        restart_due = (
            self.service.taskset is not None
            and self.watchdog.beat(self.service.stats().iterations)
        )
        interval = self.config.snapshot_interval
        snapshot_due = bool(
            interval and self.service.taskset is not None
            and self._tick % interval == 0
        )
        return restart_due, snapshot_due

    def _tick_end(self) -> None:
        """Post-I/O bookkeeping: last-good capture, brownout, gauges."""
        self._capture_last_good()
        self._observe_brownout()
        if self.telemetry.enabled:
            self._metric("queue_depth").set(float(self.queue.depth))

    def run_ticks(self, ticks: int) -> None:
        """Drive :meth:`tick` synchronously ``ticks`` times."""
        if ticks < 1:
            raise ServiceError(f"ticks must be >= 1, got {ticks!r}")
        for _ in range(ticks):
            self.tick()

    async def run(self, ticks: int) -> None:
        """Drive the loop cooperatively via :meth:`tick_async`, yielding
        between ticks so producers and queries interleave — and keeping
        checkpoint I/O off the event-loop thread."""
        if ticks < 1:
            raise ServiceError(f"ticks must be >= 1, got {ticks!r}")
        for _ in range(ticks):
            await self.tick_async()
            await asyncio.sleep(0)

    def _drain_churn(self) -> List[AdmissionDecision]:
        ops = self.queue.drain()
        if not ops:
            return []
        decisions = self.service.apply_batch(ops)
        if self.telemetry.enabled and self.telemetry.tracer.enabled:
            self.telemetry.tracer.emit(
                "churn_batch", ops=len(ops),
                rejected=sum(1 for d in decisions if not d.admitted),
            )
        return decisions

    def _advance(self) -> bool:
        """One optimizer slice, unless a stall window holds the loop."""
        if self._stall_remaining > 0:
            self._stall_remaining -= 1
            self.stall_ticks += 1
            return False
        if self.service.taskset is None:
            return False
        self.service.step(self.service.config.batch_size)
        return True

    # -- supervision -------------------------------------------------------------

    def _supervisor_restart(self) -> None:
        """The watchdog fired: restart from the last valid snapshot."""
        self.supervisor_restarts += 1
        restored = False
        try:
            restored = self.retrier.call(
                lambda: self.breaker.guard(self._restore_once),
                label="restore",
            )
        except BreakerOpenError:
            pass  # counted by the breaker; stay on the live iterate
        except ReproError:
            self.checkpoint_failures += 1
            if self.telemetry.enabled:
                self._metric("ckpt_failures").inc()
        self._note_corruptions()
        if self.telemetry.enabled:
            self._metric("restarts").inc()
            if self.telemetry.tracer.enabled:
                self.telemetry.tracer.emit(
                    "supervisor_restart", restored=bool(restored),
                    stalled_for=self.watchdog.deadline,
                )

    def _restore_once(self) -> bool:
        if self._checkpoint_outage:
            raise ServiceError(
                "checkpoint store unavailable (injected outage)"
            )
        return self.service.restore()

    def _guarded_snapshot(self) -> None:
        """Snapshot through retry + breaker; failure degrades to a
        counted skip, never an escaped exception."""
        try:
            self.retrier.call(
                lambda: self.breaker.guard(self._snapshot_once),
                label="snapshot",
            )
            self.snapshots_taken += 1
        except BreakerOpenError:
            pass  # counted by the breaker; try again next interval
        except ReproError as exc:
            self.checkpoint_failures += 1
            if self.telemetry.enabled:
                self._metric("ckpt_failures").inc()
                if self.telemetry.tracer.enabled:
                    self.telemetry.tracer.emit(
                        "checkpoint_failed", error=str(exc),
                    )
        self._note_corruptions()

    def _snapshot_once(self) -> None:
        if self._checkpoint_outage:
            raise ServiceError(
                "checkpoint store unavailable (injected outage)"
            )
        self.service.snapshot()

    def _note_corruptions(self) -> None:
        """Surface newly-detected on-disk corruption into telemetry."""
        seen = self._store.corruptions
        if seen > self.snapshot_corruptions:
            delta = seen - self.snapshot_corruptions
            self.snapshot_corruptions = seen
            if self.telemetry.enabled:
                self._metric("corruptions").inc(delta)
                if self.telemetry.tracer.enabled:
                    self.telemetry.tracer.emit(
                        "snapshot_corrupt", count=seen,
                    )

    def _capture_last_good(self) -> None:
        """Remember the live allocation whenever it is critical-time
        feasible — the answer degraded mode keeps serving."""
        taskset = self.service.taskset
        if taskset is None:
            return
        latencies = self.service.allocations()
        if not latencies:
            return
        if not taskset.is_feasible(latencies, tol=1e-2):  # statan: disable=REP016 -- one-shot validation of a proposed rebuild
            return
        self._last_good_latencies = dict(latencies)
        self._last_good_tasks = {
            task.name: task for task in taskset.tasks
        }
        self._last_good_tick = self._tick
        stats = self.service.stats()
        self._last_good_epoch = stats.epoch
        self._last_good_iteration = stats.iterations

    def _observe_brownout(self) -> None:
        stats = self.service.stats()
        if self.service.taskset is None or stats.converged:
            self._unconverged_ticks = 0
        else:
            self._unconverged_ticks += 1
        high = max(1, int(self.config.queue_high_watermark
                          * self.config.queue_capacity))
        stressed = (
            self._stall_remaining > 0
            or self._shed_this_tick > 0
            or self.queue.depth >= high
            or self._unconverged_ticks > self.config.reconverge_patience
        )
        transition = self.brownout.observe(self._tick, stressed)
        if transition is not None and self.telemetry.enabled:
            self._metric("degraded").set(
                1.0 if self.brownout.degraded else 0.0)
            self._metric("transitions").inc()
            if self.telemetry.tracer.enabled:
                self.telemetry.tracer.emit(
                    "service_degraded",
                    state="degraded" if self.brownout.degraded
                    else "healthy",
                )

    # -- queries -----------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        return self.brownout.degraded

    def query(self, name: str) -> AllocationView:
        """The task's allocation: the live iterate when healthy, the
        last known-good allocation when degraded (or when the live
        lookup fails and a last-good answer exists)."""
        if self.brownout.degraded:
            view = self._stale_view(name)
            if view is not None:
                self.degraded_served += 1
                if self.telemetry.enabled:
                    self._metric("degraded_queries").inc()
                return view
        try:
            view = self.service.query(name)
        except ServiceError:
            fallback = self._stale_view(name)
            if fallback is not None:
                self.stale_served += 1
                if self.telemetry.enabled:
                    self._metric("degraded_queries").inc()
                return fallback
            self.failed_queries += 1
            raise
        self.live_served += 1
        return view

    def _stale_view(self, name: str) -> Optional[AllocationView]:
        task = self._last_good_tasks.get(name)
        if task is None:
            return None
        latencies = {
            sub: self._last_good_latencies[sub]
            for sub in task.subtask_names
            if sub in self._last_good_latencies
        }
        if len(latencies) != len(task.subtask_names):
            return None
        return AllocationView(
            task=name,
            latencies=latencies,
            aggregated_latency=task.aggregated_latency(latencies),  # statan: disable=REP016 -- scalar query fallback when no structure is bound
            utility=task.utility_value(latencies),  # statan: disable=REP016 -- scalar query fallback when no structure is bound
            meets_critical_time=task.meets_critical_time(latencies),
            iteration=self._last_good_iteration,
            epoch=self._last_good_epoch,
            converged=True,
            degraded=True,
        )

    # -- fault hooks (driven by repro.service.faults) ----------------------------

    def inject_stall(self, ticks: int) -> None:
        """Wedge the optimizer for ``ticks`` control-loop turns."""
        if ticks < 1:
            raise ServiceError(f"stall ticks must be >= 1, got {ticks!r}")
        self._stall_remaining += ticks
        if self.telemetry.enabled and self.telemetry.tracer.enabled:
            self.telemetry.tracer.emit("loop_stall", ticks=ticks)

    def inject_storm(self, storm: ChurnStorm) -> int:
        """Fire a churn storm through :meth:`submit`; returns how many
        of its events were accepted (the rest were shed)."""
        self.storms += 1
        events = self._storm_events(storm)
        accepted = sum(1 for event in events if self.submit(event))
        if self.telemetry.enabled:
            self._metric("storms").inc()
            if self.telemetry.tracer.enabled:
                self.telemetry.tracer.emit(
                    "churn_storm", storm=storm.kind,
                    events=len(events), accepted=accepted,
                )
        return accepted

    def _storm_events(self, storm: ChurnStorm) -> List[ChurnEvent]:
        if storm.kind == "oscillate":
            victims = sorted(self.service.tasks)
            if not victims:
                return []
            events: List[ChurnEvent] = []
            for i in range(storm.events):
                name = victims[(i // 2) % len(victims)]
                if i % 2 == 0:
                    events.append(ChurnEvent(kind="deregister", key=name))
                else:
                    events.append(ChurnEvent(
                        kind="register", key=name,
                        task=self.service.task(name),
                    ))
            return events
        # storm.kind == "arrivals": fresh synthetic chain tasks cloned
        # from a live donor, with generous critical times so admission
        # pressure comes from volume, not infeasibility.
        names = sorted(self.service.tasks)
        if not names:
            return []
        donor = self.service.task(names[0])
        events = []
        for _ in range(storm.events):
            self._synthetic_serial += 1
            serial = self._synthetic_serial
            subtasks = [
                Subtask(f"storm{serial}.{i}", sub.resource,
                        exec_time=sub.exec_time)
                for i, sub in enumerate(donor.subtasks[:2])
            ]
            graph = SubtaskGraph.chain([s.name for s in subtasks])
            crit = donor.critical_time * 10.0
            task = Task(f"storm{serial}", subtasks, graph,
                        critical_time=crit, utility=LinearUtility(crit))
            events.append(ChurnEvent(kind="register", key=task.name,
                                     task=task))
        return events

    def corrupt_snapshot(self) -> None:
        """Simulate bit rot: replace the stored snapshot with garbage.

        A file-backed store gets a truncated JSON file (exercising the
        corrupted-read demotion); a memory-only store gets a snapshot
        stamped with an impossible fingerprint (exercising the mismatch
        demotion).  Either way the next restore must cold-reset."""
        path = self._store.path_for(_SNAPSHOT_AGENT)
        if path is not None:
            self._store.drop(_SNAPSHOT_AGENT)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write('{"agent": "service", "round": 7, "sta')
        else:
            self._store.save(
                _SNAPSHOT_AGENT, 0, {"resource_prices": {}},
                fingerprint="corrupted-by-fault-injection",
            )
        if self.telemetry.enabled and self.telemetry.tracer.enabled:
            self.telemetry.tracer.emit("snapshot_corrupted_injected")

    def schedule_snapshot_corruption(self) -> None:
        """Queue a :meth:`corrupt_snapshot` for this tick's I/O stage.

        The fault injector runs inside :meth:`_tick_begin`, which the
        async driver keeps on the event-loop thread — so the corrupting
        file write cannot happen there.  Scheduling defers it to the
        same stage as the restart/snapshot I/O (offloaded to a worker
        thread under :meth:`tick_async`), still before any restore in
        the same tick observes the store."""
        self._pending_corruptions += 1

    def _apply_pending_corruptions(self) -> None:
        while self._pending_corruptions > 0:
            self._pending_corruptions -= 1
            self.corrupt_snapshot()

    def set_checkpoint_outage(self, active: bool) -> None:
        """Start/stop an injected checkpoint-I/O outage."""
        self._checkpoint_outage = active
        if self.telemetry.enabled and self.telemetry.tracer.enabled:
            self.telemetry.tracer.emit(
                "checkpoint_outage", active=active,
            )

    # -- stats -------------------------------------------------------------------

    @property
    def snapshots(self) -> CheckpointStore:
        return self._store

    def stats(self) -> SupervisedStats:
        return SupervisedStats(
            tick=self._tick,
            degraded=self.brownout.degraded,
            supervisor_restarts=self.supervisor_restarts,
            watchdog_fires=self.watchdog.fires,
            stall_ticks=self.stall_ticks,
            storms=self.storms,
            queue_depth=self.queue.depth,
            queue_max_depth=self.queue.max_depth,
            queue_shed=self.queue.shed,
            queue_coalesced=self.queue.coalesced,
            degraded_shed=self.degraded_shed,
            retries=self.retrier.retries,
            retries_exhausted=self.retrier.exhausted,
            breaker_state=self.breaker.state,
            breaker_opens=self.breaker.opens,
            breaker_short_circuits=self.breaker.short_circuits,
            checkpoint_failures=self.checkpoint_failures,
            snapshot_corruptions=self.snapshot_corruptions,
            snapshots_taken=self.snapshots_taken,
            live_served=self.live_served,
            degraded_served=self.degraded_served,
            stale_served=self.stale_served,
            failed_queries=self.failed_queries,
            brownout_entries=self.brownout.entries,
            brownout_exits=self.brownout.exits,
            transitions=tuple(self.brownout.transitions),
        )
