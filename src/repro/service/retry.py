"""Deterministic retry and circuit-breaker primitives for the service layer.

Transient faults around the always-on service — a checkpoint write hitting
a flaky disk, a bus delivery timing out — deserve a bounded number of
retries with exponential backoff, not an immediate crash and not an
unbounded hot loop.  Two twists keep chaos runs reproducible:

* **seeded jitter** — the backoff jitter is drawn from a
  ``numpy.random.default_rng(seed)`` stream, so two runs of the same
  scenario retry with *identical* delays and the trace diff is empty;
* **virtual delays** — by default the computed backoff is recorded (and
  traced) but not slept: the supervised control loop is tick-driven, so
  sleeping wall-clock time inside a tick would couple the trajectory to
  the host scheduler.  Callers that genuinely want to wait inject a
  ``sleep`` callable.

The :class:`CircuitBreaker` wraps each *attempt*: enough consecutive
failures open the circuit, short-circuiting further attempts (raising
:class:`~repro.errors.BreakerOpenError`) until a cooldown — measured on an
injected tick clock, never the wall clock — admits a half-open trial.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, TypeVar

import numpy as np

from repro.errors import BreakerOpenError, ServiceError
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["RetryPolicy", "Retrier", "CircuitBreaker"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try: attempt count, backoff shape, jitter fraction.

    ``delay(attempt)`` grows geometrically from ``base_delay`` by
    ``multiplier``, is capped at ``max_delay``, and is stretched by up to
    ``jitter``·100% drawn from the caller's seeded RNG.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if not math.isfinite(self.base_delay) or self.base_delay < 0.0:
            raise ServiceError(
                f"base_delay must be finite and >= 0, got {self.base_delay!r}"
            )
        if not math.isfinite(self.multiplier) or self.multiplier < 1.0:
            raise ServiceError(
                f"multiplier must be finite and >= 1, got {self.multiplier!r}"
            )
        if not math.isfinite(self.max_delay) or \
                self.max_delay < self.base_delay:
            raise ServiceError(
                f"max_delay must be finite and >= base_delay, "
                f"got {self.max_delay!r}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ServiceError(
                f"jitter must be in [0, 1], got {self.jitter!r}"
            )

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retrying after failed attempt ``attempt``
        (1-based), jittered deterministically from ``rng``."""
        if attempt < 1:
            raise ServiceError(f"attempt must be >= 1, got {attempt!r}")
        backoff = min(self.max_delay,
                      self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter > 0.0:
            backoff *= 1.0 + self.jitter * float(rng.random())
        return backoff


class Retrier:
    """Calls a function with bounded retries and deterministic backoff.

    A :class:`BreakerOpenError` escaping the callable is terminal — the
    circuit is open, retrying inside the cooldown can only fail — so it
    propagates immediately instead of burning the remaining attempts.
    """

    def __init__(self, policy: Optional[RetryPolicy] = None, *,
                 seed: int = 0,
                 sleep: Optional[Callable[[float], None]] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.policy = policy or RetryPolicy()
        self._rng = np.random.default_rng(seed)
        self._sleep = sleep
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._metrics: Optional[Dict[str, Any]] = None
        self.attempts = 0
        self.retries = 0
        self.exhausted = 0
        self.total_backoff = 0.0

    def _metric(self, name: str) -> Any:
        if self._metrics is None:
            registry = self.telemetry.registry
            self._metrics = {
                "retries": registry.counter(
                    "service.retries_total",
                    "retried attempts after a transient failure"),
                "exhausted": registry.counter(
                    "service.retries_exhausted_total",
                    "calls that failed every allowed attempt"),
            }
        return self._metrics[name]

    def call(self, fn: Callable[[], T], *, label: str = "call") -> T:
        """Run ``fn`` with up to ``policy.max_attempts`` tries; re-raises
        the last failure once the attempts are exhausted."""
        last: Optional[BaseException] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            self.attempts += 1
            try:
                return fn()
            except BreakerOpenError:
                raise
            except Exception as exc:  # statan: disable=REP003 -- retryable; re-raised on exhaustion
                last = exc
            if attempt == self.policy.max_attempts:
                break
            delay = self.policy.delay(attempt, self._rng)
            self.retries += 1
            self.total_backoff += delay
            if self.telemetry.enabled:
                self._metric("retries").inc()
                if self.telemetry.tracer.enabled:
                    self.telemetry.tracer.emit(
                        "retry", label=label, attempt=attempt,
                        backoff_s=delay, error=str(last),
                    )
            if self._sleep is not None:
                self._sleep(delay)
        self.exhausted += 1
        if self.telemetry.enabled:
            self._metric("exhausted").inc()
        assert last is not None
        raise last


class CircuitBreaker:
    """Trips after consecutive failures; recloses via a half-open trial.

    States: ``closed`` (normal), ``open`` (calls short-circuit with
    :class:`~repro.errors.BreakerOpenError` until ``cooldown`` ticks
    elapse), ``half_open`` (one probationary call decides: success →
    closed, failure → open again).  Time is whatever the injected
    ``clock`` returns — the supervised loop passes its tick counter, so
    the breaker's trajectory is deterministic.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 3, cooldown: float = 5.0, *,
                 clock: Callable[[], float],
                 telemetry: Optional[Telemetry] = None,
                 name: str = "breaker") -> None:
        if failure_threshold < 1:
            raise ServiceError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if not math.isfinite(cooldown) or cooldown <= 0.0:
            raise ServiceError(
                f"cooldown must be finite and > 0, got {cooldown!r}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.name = name
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.opens = 0
        self.short_circuits = 0
        self._metrics: Optional[Dict[str, Any]] = None

    def _metric(self, key: str) -> Any:
        if self._metrics is None:
            registry = self.telemetry.registry
            self._metrics = {
                "opens": registry.counter(
                    "service.breaker_opens_total",
                    "circuit-breaker trips (closed/half-open -> open)"),
                "shorted": registry.counter(
                    "service.breaker_short_circuits_total",
                    "calls rejected while the circuit was open"),
            }
        return self._metrics[key]

    def allow(self) -> bool:
        """Whether a call may proceed now (transitions open → half-open
        when the cooldown has elapsed)."""
        if self.state == self.OPEN:
            assert self.opened_at is not None
            if self._clock() - self.opened_at >= self.cooldown:
                self.state = self.HALF_OPEN
                if self.telemetry.enabled and self.telemetry.tracer.enabled:
                    self.telemetry.tracer.emit(
                        "breaker_half_open", breaker=self.name,
                    )
                return True
            return False
        return True

    def record_success(self) -> None:
        if self.state != self.CLOSED:
            self.state = self.CLOSED
            self.opened_at = None
            if self.telemetry.enabled and self.telemetry.tracer.enabled:
                self.telemetry.tracer.emit(
                    "breaker_closed", breaker=self.name,
                )
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        tripped = self.state == self.HALF_OPEN or (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        )
        if tripped:
            self.state = self.OPEN
            self.opened_at = self._clock()
            self.opens += 1
            if self.telemetry.enabled:
                self._metric("opens").inc()
                if self.telemetry.tracer.enabled:
                    self.telemetry.tracer.emit(
                        "breaker_open", breaker=self.name,
                        failures=self.consecutive_failures,
                    )

    def guard(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the breaker: short-circuit when open, record
        the outcome otherwise."""
        if not self.allow():
            self.short_circuits += 1
            if self.telemetry.enabled:
                self._metric("shorted").inc()
            raise BreakerOpenError(
                f"circuit {self.name!r} is open "
                f"({self.consecutive_failures} consecutive failures)"
            )
        try:
            result = fn()
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result
