"""Brownout hysteresis: when to degrade, and when to trust the calm.

The degraded-mode decision is a classic flapping hazard: overload signals
are noisy tick to tick, and a controller that enters/exits degraded mode
on every blip thrashes between the live iterate and the stale-but-safe
allocation.  :class:`BrownoutController` is the standard cure — a
two-threshold hysteresis loop: ``enter_after`` *consecutive* stressed
ticks are required to enter degraded mode, and ``exit_after`` consecutive
calm ticks to leave it.  A single contrary tick resets the opposing run.

The controller is pure bookkeeping — the caller decides what "stressed"
means (queue near capacity, sheds, an active stall, re-convergence
overdue) and what degraded mode does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ServiceError

__all__ = ["BrownoutConfig", "BrownoutController"]


@dataclass(frozen=True)
class BrownoutConfig:
    """Hysteresis widths, in consecutive control-loop ticks."""

    enter_after: int = 3
    exit_after: int = 5

    def __post_init__(self) -> None:
        if self.enter_after < 1:
            raise ServiceError(
                f"enter_after must be >= 1, got {self.enter_after!r}"
            )
        if self.exit_after < 1:
            raise ServiceError(
                f"exit_after must be >= 1, got {self.exit_after!r}"
            )


class BrownoutController:
    """Tracks stress runs and flips the degraded flag with hysteresis."""

    def __init__(self, config: Optional[BrownoutConfig] = None) -> None:
        self.config = config or BrownoutConfig()
        self.degraded = False
        self.entries = 0
        self.exits = 0
        #: ``(tick, "degraded" | "healthy")`` state-transition log.
        self.transitions: List[Tuple[int, str]] = []
        self._stress_run = 0
        self._calm_run = 0

    def observe(self, tick: int, stressed: bool) -> Optional[str]:
        """Feed one tick's stress verdict; returns ``"enter"`` / ``"exit"``
        on a state transition, ``None`` otherwise."""
        if stressed:
            self._stress_run += 1
            self._calm_run = 0
        else:
            self._calm_run += 1
            self._stress_run = 0
        if not self.degraded and \
                self._stress_run >= self.config.enter_after:
            self.degraded = True
            self.entries += 1
            self.transitions.append((tick, "degraded"))
            return "enter"
        if self.degraded and self._calm_run >= self.config.exit_after:
            self.degraded = False
            self.exits += 1
            self.transitions.append((tick, "healthy"))
            return "exit"
        return None
