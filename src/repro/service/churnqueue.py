"""Bounded churn queue with per-task coalescing and shed-and-reject.

The naive service applies every churn event immediately: N events, N
recompiles.  Under a churn storm (an autoscaler flapping, a deploy
re-registering a fleet) that is N× the dominant rebuild cost for zero
information — only the *net* membership matters.  :class:`ChurnQueue`
absorbs events between control-loop ticks and coalesces them per subject:

* ``register`` then ``deregister`` of the same task cancels to nothing;
* ``deregister`` then ``register`` collapses to a single *replace*;
* repeated ``update``/``set_availability`` keep only the latest values,
  and an ``update`` folds into a pending ``register``/``replace``.

The queue is **bounded**: once ``capacity`` distinct subjects are
pending, events for *new* subjects are shed (counted, reported to the
caller) rather than growing without limit — backpressure, not OOM.
Events for subjects already pending always coalesce for free.

:meth:`drain` empties the queue in deterministic (key-sorted) order so
the supervised loop can apply the whole batch through **one** recompile.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.model.task import Task
from repro.model.utility import UtilityFunction

__all__ = ["ChurnEvent", "ChurnQueue"]

#: Event kinds accepted by :meth:`ChurnQueue.offer`.
_INPUT_KINDS = ("register", "deregister", "update", "availability")
#: Additional kind that only appears in drained batches: a deregister
#: followed by a register of the same name, collapsed into one swap.
_REPLACE = "replace"


@dataclass(frozen=True)
class ChurnEvent:
    """One workload mutation, as queued and as drained.

    ``key`` is the task name (or the resource name for ``availability``).
    ``critical_time``/``utility`` ride along on ``update`` events and on
    ``register``/``replace`` slots an update folded into.
    """

    kind: str
    key: str
    task: Optional[Task] = None
    critical_time: Optional[float] = None
    utility: Optional[UtilityFunction] = None
    availability: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in _INPUT_KINDS and self.kind != _REPLACE:
            raise ServiceError(
                f"unknown churn event kind {self.kind!r}; "
                f"expected one of {_INPUT_KINDS + (_REPLACE,)}"
            )
        if not self.key:
            raise ServiceError("churn event needs a non-empty key")
        if self.kind in ("register", _REPLACE):
            if self.task is None:
                raise ServiceError(f"{self.kind} event needs a task")
            if self.task.name != self.key:
                raise ServiceError(
                    f"{self.kind} event key {self.key!r} does not match "
                    f"task name {self.task.name!r}"
                )
        elif self.kind == "update":
            if self.critical_time is None and self.utility is None:
                raise ServiceError(
                    "update event needs a critical_time and/or a utility"
                )
        elif self.kind == "availability":
            if self.availability is None:
                raise ServiceError("availability event needs a value")


def _merge_updates(slot: ChurnEvent, event: ChurnEvent) -> ChurnEvent:
    """Fold ``event``'s update fields onto ``slot`` (latest wins)."""
    return replace(
        slot,
        critical_time=(event.critical_time if event.critical_time is not None
                       else slot.critical_time),
        utility=event.utility if event.utility is not None else slot.utility,
    )


class ChurnQueue:
    """Bounded, coalescing buffer between churn producers and the loop."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        # Insertion order is irrelevant: drain() sorts by key, so the
        # applied batch depends only on the coalesced net effect.
        self._slots: Dict[Tuple[str, str], ChurnEvent] = {}
        self.offered = 0
        self.coalesced = 0
        self.shed = 0
        self.max_depth = 0
        self.drained_batches = 0

    # -- state -------------------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    @staticmethod
    def _slot_key(event: ChurnEvent) -> Tuple[str, str]:
        domain = "resource" if event.kind == "availability" else "task"
        return (domain, event.key)

    # -- producing ---------------------------------------------------------------

    def offer(self, event: ChurnEvent) -> bool:
        """Queue ``event``; ``False`` when it was shed at capacity.

        Events whose subject is already pending always coalesce into the
        existing slot; only a *new* subject consumes capacity.
        """
        self.offered += 1
        key = self._slot_key(event)
        slot = self._slots.get(key)
        if slot is None:
            if len(self._slots) >= self.capacity:
                self.shed += 1
                return False
            self._slots[key] = event
            self.max_depth = max(self.max_depth, len(self._slots))
            return True
        self.coalesced += 1
        merged = self._coalesce(slot, event)
        if merged is None:
            del self._slots[key]
        else:
            self._slots[key] = merged
        return True

    @staticmethod
    def _coalesce(slot: ChurnEvent,
                  event: ChurnEvent) -> Optional[ChurnEvent]:
        """The net effect of ``slot`` then ``event``; ``None`` cancels."""
        if event.kind == "availability":
            return event
        if event.kind == "deregister":
            # A pending arrival that leaves again is a no-op; a pending
            # replace/update of a live task reduces to its departure.
            return None if slot.kind == "register" else event
        if event.kind == "register":
            if slot.kind == "deregister":
                return ChurnEvent(kind=_REPLACE, key=event.key,
                                  task=event.task)
            # register/replace/update already pending: the subject is
            # live (or about to be), so a fresh body means a swap.
            kind = "register" if slot.kind == "register" else _REPLACE
            return ChurnEvent(kind=kind, key=event.key, task=event.task)
        # event.kind == "update"
        if slot.kind == "deregister":
            return slot  # updating a departing task is dead work
        return _merge_updates(slot, event)

    # -- consuming ---------------------------------------------------------------

    def drain(self) -> List[ChurnEvent]:
        """Remove and return every pending event, key-sorted, ready to be
        applied as one batch (one recompile)."""
        if not self._slots:
            return []
        batch = [self._slots[key] for key in sorted(self._slots)]
        self._slots.clear()
        self.drained_batches += 1
        return batch
