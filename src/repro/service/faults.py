"""Service-layer fault injection: binding a FaultPlan to the supervisor.

PR 3's :class:`~repro.distributed.faults.FaultPlan` scripts transport and
agent faults against the distributed runtime; this module applies the
plan's *service-layer* windows — :class:`~repro.distributed.faults.
LoopStall`, :class:`~repro.distributed.faults.ChurnStorm`,
:class:`~repro.distributed.faults.CheckpointCorruption`,
:class:`~repro.distributed.faults.CheckpointOutage` — against a
:class:`~repro.service.supervisor.SupervisedService` tick loop.  The
round convention matches PR 3: 1-based ticks, actions fire at the start
of their tick (the supervisor calls :meth:`ServiceFaultInjector.apply`
before draining churn), and window ends clear before new faults fire.

The split is deliberate and enforced in both directions: the distributed
:class:`~repro.distributed.faults.FaultInjector` rejects plans carrying
service faults, and this injector rejects plans carrying distributed
faults, so a plan can never be silently half-applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from repro.distributed.faults import (
    CheckpointCorruption,
    CheckpointOutage,
    ChurnStorm,
    FaultPlan,
    LoopStall,
)
from repro.errors import ServiceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.supervisor import SupervisedService

__all__ = ["ServiceFaultInjector"]


@dataclass
class _TickActions:
    """Everything a single tick triggers, precomputed."""

    stalls: List[LoopStall] = field(default_factory=list)
    storms: List[ChurnStorm] = field(default_factory=list)
    corruptions: List[CheckpointCorruption] = field(default_factory=list)
    outage_starts: List[CheckpointOutage] = field(default_factory=list)
    outage_ends: List[CheckpointOutage] = field(default_factory=list)


class ServiceFaultInjector:
    """Applies a plan's service-layer faults to a supervised loop."""

    def __init__(self, plan: FaultPlan,
                 supervised: "SupervisedService") -> None:
        if plan.has_distributed_faults():
            raise ServiceError(
                "fault plan contains distributed faults (crashes, "
                "partitions, loss, duplication, reorder, capacity "
                "shocks); apply those with the distributed FaultInjector "
                "against a DistributedLLARuntime, not the service "
                "injector"
            )
        self.plan = plan
        self.supervised = supervised
        self._by_tick: Dict[int, _TickActions] = {}
        for stall in plan.loop_stalls:
            self._at(stall.at).stalls.append(stall)
        for storm in plan.churn_storms:
            self._at(storm.at).storms.append(storm)
        for corruption in plan.checkpoint_corruptions:
            self._at(corruption.at).corruptions.append(corruption)
        for outage in plan.checkpoint_outages:
            self._at(outage.start).outage_starts.append(outage)
            self._at(outage.end).outage_ends.append(outage)

    def _at(self, tick: int) -> _TickActions:
        actions = self._by_tick.get(tick)
        if actions is None:
            actions = self._by_tick[tick] = _TickActions()
        return actions

    def apply(self, tick: int) -> None:
        """Fire every action scheduled for ``tick``."""
        actions = self._by_tick.get(tick)
        if actions is None:
            return
        # Ends first so back-to-back windows hand over cleanly.
        for _outage in actions.outage_ends:
            self.supervised.set_checkpoint_outage(False)
        for _outage in actions.outage_starts:
            self.supervised.set_checkpoint_outage(True)
        for stall in actions.stalls:
            self.supervised.inject_stall(stall.ticks)
        for _corruption in actions.corruptions:
            # Scheduled, not fired: the corrupting file write happens in
            # the tick's I/O stage (off the loop thread in async runs),
            # before any same-tick restore reads the store.
            self.supervised.schedule_snapshot_corruption()
        for storm in actions.storms:
            self.supervised.inject_storm(storm)
