"""Content-hash incremental analysis cache.

Two-pass analysis re-reads every file anyway (pass 2 needs every
module's index), so the cache skips the expensive part only: parsing and
pass-1 rule execution.  Each entry is keyed by the file's content digest
and stores the pass-1 findings, the suppression table, and the
serialized :class:`~repro.statan.project.ModuleIndex`; pass 2 always
runs fresh over the (mostly cached) indexes, because cross-module
conclusions cannot be cached per file.

A salt derived from the rule catalog's *source code* invalidates the
whole cache when any rule changes, so editing a rule never serves stale
verdicts.  The cache file is advisory: unreadable or version-skewed
caches are ignored, never fatal.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.statan.findings import Finding
from repro.statan.project import ModuleIndex
from repro.statan.suppress import Suppression

__all__ = ["AnalysisCache", "CacheEntry", "rules_salt", "source_digest"]

_CACHE_VERSION = 3


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def rules_salt(rules: Sequence[object]) -> str:
    """A digest of the active rules' implementation source."""
    hasher = hashlib.sha256()
    for rule in rules:
        hasher.update(type(rule).__name__.encode("utf-8"))
        try:
            hasher.update(inspect.getsource(type(rule)).encode("utf-8"))
        except (OSError, TypeError):  # pragma: no cover - frozen envs
            hasher.update(getattr(rule, "rule_id", "?").encode("utf-8"))
    return hasher.hexdigest()[:20]


class CacheEntry:
    """One file's cached pass-1 outcome plus its module index."""

    def __init__(self, digest: str, findings: List[Finding],
                 suppressed: List[Finding],
                 suppressions: Dict[int, Suppression],
                 index: ModuleIndex) -> None:
        self.digest = digest
        self.findings = findings
        self.suppressed = suppressed
        self.suppressions = suppressions
        self.index = index

    def to_dict(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "suppressions": [
                {"line": s.line, "rule_ids": list(s.rule_ids),
                 "justification": s.justification}
                for s in self.suppressions.values()
            ],
            "index": self.index.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CacheEntry":
        suppressions = {
            int(s["line"]): Suppression(
                line=int(s["line"]),
                rule_ids=tuple(s["rule_ids"]),
                justification=s["justification"],
            )
            for s in payload["suppressions"]
        }
        return cls(
            digest=payload["digest"],
            findings=[Finding.from_dict(f) for f in payload["findings"]],
            suppressed=[Finding.from_dict(f)
                        for f in payload["suppressed"]],
            suppressions=suppressions,
            index=ModuleIndex.from_dict(payload["index"]),
        )


class AnalysisCache:
    """The on-disk cache: load leniently, save atomically."""

    def __init__(self, path: str, salt: str) -> None:
        self.path = path
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("version") != _CACHE_VERSION or \
                payload.get("salt") != self.salt:
            return  # rule code or format changed: start over
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def lookup(self, file_path: str, digest: str) -> Optional[CacheEntry]:
        raw = self._entries.get(file_path)
        if raw is None or raw.get("digest") != digest:
            self.misses += 1
            return None
        try:
            entry = CacheEntry.from_dict(raw)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, file_path: str, entry: CacheEntry) -> None:
        self._entries[file_path] = entry.to_dict()
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "version": _CACHE_VERSION,
            "salt": self.salt,
            "entries": self._entries,
        }
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        tmp: Optional[str] = None
        try:
            fd, tmp = tempfile.mkstemp(dir=directory, prefix=".statan-",
                                       suffix=".cache")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path)
        except OSError:
            # Cache is advisory — a failed save is not an error, but it
            # must not litter the directory with orphaned temp files.
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:  # pragma: no cover - already gone
                    pass
            return
        self._dirty = False

    @property
    def stats(self) -> Tuple[int, int]:
        return self.hits, self.misses
