"""The :class:`Finding` record every rule emits."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict


class Severity(enum.Enum):
    """How a finding gates the build.

    Every shipped rule is an ``ERROR`` today — a violated invariant is a
    latent reproducibility bug, not a style nit — but the level travels
    with the finding so reporters (and SARIF consumers) can distinguish
    future advisory rules without a format change.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the file as given to the engine; ``relpath`` is the
    package-rooted posix path (``repro/core/optimizer.py``) used for rule
    scoping, stable across checkouts and what reporters should print.
    """

    rule_id: str
    message: str
    path: str
    relpath: str
    line: int
    col: int = 0
    severity: Severity = Severity.ERROR
    #: Free-form extras (e.g. the offending symbol) for machine consumers.
    data: Dict[str, Any] = field(default_factory=dict, compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def render(self) -> str:
        return (
            f"{self.location()}: {self.rule_id} [{self.severity}] "
            f"{self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule_id,
            "message": self.message,
            "path": self.path,
            "relpath": self.relpath,
            "line": self.line,
            "col": self.col,
            "severity": str(self.severity),
        }
        if self.data:
            payload["data"] = dict(self.data)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the incremental cache)."""
        return cls(
            rule_id=payload["rule"],
            message=payload["message"],
            path=payload["path"],
            relpath=payload["relpath"],
            line=payload["line"],
            col=payload.get("col", 0),
            severity=Severity(payload.get("severity", "error")),
            data=dict(payload.get("data", {})),
        )
