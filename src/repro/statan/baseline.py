"""Adopt-new-rules baselines: old findings don't gate, new ones do.

Turning on a new rule over a 150-file tree surfaces pre-existing
findings that are real but not this PR's problem.  The baseline records
their fingerprints; a run with ``--baseline`` exits clean when every
finding is either inline-suppressed or already in the file, and fails
the moment a *new* finding appears.  Shrinking the file (fixing old
findings and re-seeding) is progress; growing it requires an explicit
``--write-baseline`` that shows up in the diff.

Fingerprints must survive unrelated edits, so they hash the finding's
rule id, file, and the *stripped text of the offending line* — not the
line number.  Two identical lines in one file disambiguate by ordinal.
The same fingerprint feeds SARIF ``partialFingerprints``, so GitHub
code scanning dedups across runs with the same key.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.errors import StaticAnalysisError
from repro.statan.findings import Finding

__all__ = [
    "FINGERPRINT_KEY",
    "assign_fingerprints",
    "finding_fingerprints",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

#: ``Finding.data`` key the assigned fingerprint is stored under.
FINGERPRINT_KEY = "fingerprint"

_BASELINE_VERSION = 1


def _line_text(lines: Sequence[str], lineno: int) -> str:
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""


def _digest(rule_id: str, relpath: str, text: str, ordinal: int) -> str:
    payload = "\x00".join((rule_id, relpath, text, str(ordinal)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def finding_fingerprints(
    findings: Sequence[Finding],
    lines_by_path: Dict[str, Sequence[str]],
) -> List[str]:
    """Stable fingerprints, position-matched to ``findings``.

    ``lines_by_path`` maps each finding's ``path`` to its source lines;
    findings in unknown files hash an empty line text (still stable).
    """
    keyed: List[Tuple[str, Finding]] = []
    for finding in findings:
        lines = lines_by_path.get(finding.path, ())
        keyed.append((_line_text(lines, finding.line), finding))
    # Ordinal among findings with an identical (rule, file, line-text)
    # triple, in source order, so duplicated lines stay distinct.
    order = sorted(
        range(len(keyed)),
        key=lambda i: (keyed[i][1].relpath, keyed[i][1].line,
                       keyed[i][1].col, keyed[i][1].rule_id),
    )
    counters: Dict[Tuple[str, str, str], int] = {}
    prints: List[str] = [""] * len(keyed)
    for i in order:
        text, finding = keyed[i]
        key = (finding.rule_id, finding.relpath, text)
        ordinal = counters.get(key, 0)
        counters[key] = ordinal + 1
        prints[i] = _digest(finding.rule_id, finding.relpath, text,
                            ordinal)
    return prints


def assign_fingerprints(
    findings: Sequence[Finding],
    lines_by_path: Dict[str, Sequence[str]],
) -> None:
    """Stamp each finding's fingerprint into ``finding.data``."""
    for finding, fingerprint in zip(
            findings, finding_fingerprints(findings, lines_by_path)):
        finding.data[FINGERPRINT_KEY] = fingerprint


def load_baseline(path: str) -> Dict[str, Dict[str, Any]]:
    """The baseline file → ``{fingerprint: descriptor}``."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise StaticAnalysisError(
            f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise StaticAnalysisError(
            f"baseline {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise StaticAnalysisError(
            f"baseline {path!r} has no `entries` table")
    entries = payload["entries"]
    if not isinstance(entries, dict):
        raise StaticAnalysisError(
            f"baseline {path!r} `entries` must be an object")
    return dict(entries)


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write the baseline for ``findings`` (already fingerprinted);
    returns how many entries were recorded."""
    entries: Dict[str, Dict[str, Any]] = {}
    for finding in findings:
        fingerprint = finding.data.get(FINGERPRINT_KEY)
        if not isinstance(fingerprint, str):
            raise StaticAnalysisError(
                "finding has no fingerprint; baselines can only be "
                "written from a full lint_paths run"
            )
        entries[fingerprint] = {
            "rule": finding.rule_id,
            "relpath": finding.relpath,
            "line": finding.line,
            "message": finding.message,
        }
    payload = {
        "version": _BASELINE_VERSION,
        "tool": "repro.statan",
        "entries": dict(sorted(entries.items())),
    }
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".baseline-",
                               suffix=".json")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
    return len(entries)


def apply_baseline(
    findings: Sequence[Finding],
    baseline: Dict[str, Dict[str, Any]],
) -> Tuple[List[Finding], List[Finding]]:
    """Split fingerprinted findings into (fresh, baselined)."""
    fresh: List[Finding] = []
    known: List[Finding] = []
    for finding in findings:
        fingerprint = finding.data.get(FINGERPRINT_KEY)
        if isinstance(fingerprint, str) and fingerprint in baseline:
            known.append(finding)
        else:
            fresh.append(finding)
    return fresh, known
