"""Inline suppression directives.

Syntax (one per physical line, in a comment)::

    risky_call()  # statan: disable=REP002 -- replay never sees this path

* ``disable=`` takes a comma-separated list of rule ids.
* The ``--`` justification is **mandatory**: an unjustified suppression
  is itself reported (``STA002``), so every waiver carries its reason in
  the diff forever.
* Malformed directives (no ``disable=``, empty id list) report
  ``STA001`` rather than being silently ignored — a typo must not turn
  a real violation invisible.

Suppressions apply to findings on the same physical line.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.statan.findings import Finding, Severity

__all__ = ["Suppression", "parse_suppressions", "apply_suppressions",
           "STA_MALFORMED", "STA_UNJUSTIFIED"]

STA_MALFORMED = "STA001"
STA_UNJUSTIFIED = "STA002"

_DIRECTIVE = re.compile(r"#\s*statan:\s*(?P<body>.*)$")
_DISABLE = re.compile(
    r"disable\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*))?$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# statan: disable=...`` directive."""

    line: int
    rule_ids: Tuple[str, ...]
    justification: str


def parse_suppressions(
    source: str, path: str, relpath: str,
) -> Tuple[Dict[int, Suppression], List[Finding]]:
    """Extract directives from comments; malformed ones become findings."""
    suppressions: Dict[int, Suppression] = {}
    problems: List[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The engine reports unparsable files separately; nothing to do.
        return {}, []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        body = match.group("body").strip()
        disable = _DISABLE.match(body)
        if disable is None:
            problems.append(Finding(
                rule_id=STA_MALFORMED,
                message=(
                    f"malformed statan directive {tok.string.strip()!r}; "
                    "expected `# statan: disable=RULE[,RULE...] -- "
                    "justification`"
                ),
                path=path, relpath=relpath, line=line, col=tok.start[1],
                severity=Severity.ERROR,
            ))
            continue
        ids = tuple(
            part.strip().upper()
            for part in disable.group("ids").split(",") if part.strip()
        )
        why = (disable.group("why") or "").strip()
        if not ids:
            problems.append(Finding(
                rule_id=STA_MALFORMED,
                message="statan directive disables no rules",
                path=path, relpath=relpath, line=line, col=tok.start[1],
                severity=Severity.ERROR,
            ))
            continue
        if not why:
            problems.append(Finding(
                rule_id=STA_UNJUSTIFIED,
                message=(
                    f"suppression of {', '.join(ids)} has no justification; "
                    "append `-- <reason>` (the waiver must explain itself)"
                ),
                path=path, relpath=relpath, line=line, col=tok.start[1],
                severity=Severity.ERROR,
            ))
            continue
        suppressions[line] = Suppression(line, ids, why)
    return suppressions, problems


def apply_suppressions(
    findings: List[Finding],
    suppressions: Dict[int, Suppression],
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (kept, suppressed) using same-line directives."""
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        directive = suppressions.get(finding.line)
        if directive is not None and finding.rule_id in directive.rule_ids:
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed
