"""Pass 2: the whole-program index cross-module rules run over.

Pass 1 rules see one file at a time; the properties PR 7–8's always-on
service made load-bearing are *cross-module*: "no call chain from an
``async def`` reaches blocking I/O", "every metric a dashboard reads is
actually registered somewhere", "every ``*Config`` knob is validated".
This module extracts a compact, JSON-serializable :class:`ModuleIndex`
per file (so the incremental cache can store it) and assembles them into
a :class:`ProjectIndex` with resolved symbols and a name-based call
graph.

The call graph is deliberately modest — Python's dynamism makes a sound
one impossible without types — but tuned to this codebase's idioms:

* ``self.method()`` edges within a class;
* ``self.attr.method()`` one-hop edges through inferred attribute types
  (constructor assignments ``self.x = ClassName(...)``, annotated
  assignments, ``__init__`` parameter annotations with ``Optional``
  stripped, and either branch of a guarding ``IfExp``);
* module-level ``function()`` calls and imported names resolved through
  the file's import table;
* function *references* passed as arguments count as edges too — that is
  how ``Retrier.call(lambda: ...)`` / ``CircuitBreaker.guard(fn)``
  chains stay visible — except references handed to a recognized
  offloading API (``asyncio.to_thread``, ``run_in_executor``), which is
  precisely the sanctioned fix for blocking work in async context.

Lambda bodies are folded into their enclosing function, so
``retrier.call(lambda: self.breaker.guard(self._snapshot_once))``
contributes edges from the enclosing method directly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "BLOCKING_CALLS",
    "OFFLOAD_CALLS",
    "BlockingSite",
    "CallEdge",
    "ClassInfo",
    "ConfigField",
    "ConfigInfo",
    "FunctionInfo",
    "MetricDef",
    "MetricRead",
    "EventEmit",
    "EventRead",
    "ModuleIndex",
    "ProjectIndex",
    "build_module_index",
    "module_name_for",
]

#: Dotted names whose call blocks the running thread.  Kept tight on
#: purpose: the point is event-loop stalls (REP011), not a general I/O
#: audit, and a fuzzy list would drown the signal in noise.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.system",
    "os.fdopen",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
})

#: Builtin callables that block (flagged unless shadowed by an import).
_BLOCKING_BUILTINS = frozenset({"open"})

#: APIs that move a callable off the event loop: a function reference
#: passed to one of these is *not* a call edge from async context.
OFFLOAD_CALLS = frozenset({
    "asyncio.to_thread",
    "run_in_executor",
})

_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram", "timer"})


@dataclass
class CallEdge:
    """One potential call (or callable reference) out of a function.

    ``kind`` is how the target was written: ``"self"`` (``self.m()``),
    ``"selfattr"`` (``self.a.m()`` — resolved through attribute types),
    ``"name"`` (bare or imported name, stored fully resolved through the
    file's imports).  ``is_ref`` marks a reference passed as an argument
    rather than a direct call.
    """

    kind: str
    target: str
    lineno: int
    is_ref: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "target": self.target,
                "lineno": self.lineno, "is_ref": self.is_ref}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CallEdge":
        return cls(kind=payload["kind"], target=payload["target"],
                   lineno=payload["lineno"], is_ref=payload["is_ref"])


@dataclass
class BlockingSite:
    """A direct call to a blocking primitive inside one function."""

    symbol: str
    lineno: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {"symbol": self.symbol, "lineno": self.lineno,
                "col": self.col}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BlockingSite":
        return cls(symbol=payload["symbol"], lineno=payload["lineno"],
                   col=payload["col"])


@dataclass
class FunctionInfo:
    """One function or method and its outgoing edges."""

    name: str
    cls: Optional[str]
    lineno: int
    is_async: bool
    calls: List[CallEdge] = field(default_factory=list)
    blocking: List[BlockingSite] = field(default_factory=list)

    @property
    def qualname(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "cls": self.cls, "lineno": self.lineno,
            "is_async": self.is_async,
            "calls": [c.to_dict() for c in self.calls],
            "blocking": [b.to_dict() for b in self.blocking],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FunctionInfo":
        return cls(
            name=payload["name"], cls=payload["cls"],
            lineno=payload["lineno"], is_async=payload["is_async"],
            calls=[CallEdge.from_dict(c) for c in payload["calls"]],
            blocking=[BlockingSite.from_dict(b)
                      for b in payload["blocking"]],
        )


@dataclass
class ConfigField:
    """One dataclass field of a ``*Config`` class."""

    name: str
    annotation: str
    lineno: int
    optional: bool
    has_default: bool

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "annotation": self.annotation,
                "lineno": self.lineno, "optional": self.optional,
                "has_default": self.has_default}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ConfigField":
        return cls(name=payload["name"], annotation=payload["annotation"],
                   lineno=payload["lineno"], optional=payload["optional"],
                   has_default=payload["has_default"])


@dataclass
class ConfigInfo:
    """A ``@dataclass ... class *Config`` and what its validator touches."""

    cls: str
    lineno: int
    fields: List[ConfigField] = field(default_factory=list)
    has_post_init: bool = False
    post_init_refs: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cls": self.cls, "lineno": self.lineno,
            "fields": [f.to_dict() for f in self.fields],
            "has_post_init": self.has_post_init,
            "post_init_refs": list(self.post_init_refs),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ConfigInfo":
        return cls(
            cls=payload["cls"], lineno=payload["lineno"],
            fields=[ConfigField.from_dict(f) for f in payload["fields"]],
            has_post_init=payload["has_post_init"],
            post_init_refs=list(payload["post_init_refs"]),
        )


@dataclass
class ClassInfo:
    """One class: attribute-type candidates and method names."""

    name: str
    lineno: int
    #: attr name → candidate type names (dotted, resolved through the
    #: file's imports where possible; bare names resolved project-wide).
    attr_types: Dict[str, List[str]] = field(default_factory=dict)
    methods: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "lineno": self.lineno,
                "attr_types": {k: list(v)
                               for k, v in self.attr_types.items()},
                "methods": list(self.methods)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ClassInfo":
        return cls(name=payload["name"], lineno=payload["lineno"],
                   attr_types={k: list(v)
                               for k, v in payload["attr_types"].items()},
                   methods=list(payload["methods"]))


@dataclass
class MetricDef:
    name: str
    kind: str
    lineno: int

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "lineno": self.lineno}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MetricDef":
        return cls(**payload)


@dataclass
class MetricRead:
    name: str
    lineno: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "lineno": self.lineno, "col": self.col}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MetricRead":
        return cls(**payload)


@dataclass
class EventEmit:
    kind: str
    lineno: int

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "lineno": self.lineno}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EventEmit":
        return cls(**payload)


@dataclass
class EventRead:
    kind: str
    lineno: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "lineno": self.lineno, "col": self.col}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EventRead":
        return cls(**payload)


@dataclass
class ModuleIndex:
    """Everything pass 2 needs to know about one file."""

    module: str
    path: str
    relpath: str
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    configs: List[ConfigInfo] = field(default_factory=list)
    metric_defs: List[MetricDef] = field(default_factory=list)
    metric_reads: List[MetricRead] = field(default_factory=list)
    event_emits: List[EventEmit] = field(default_factory=list)
    event_reads: List[EventRead] = field(default_factory=list)
    #: local/imported name → dotted target, for project-wide resolution.
    imports: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module, "path": self.path,
            "relpath": self.relpath,
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
            "functions": {k: v.to_dict()
                          for k, v in self.functions.items()},
            "configs": [c.to_dict() for c in self.configs],
            "metric_defs": [m.to_dict() for m in self.metric_defs],
            "metric_reads": [m.to_dict() for m in self.metric_reads],
            "event_emits": [e.to_dict() for e in self.event_emits],
            "event_reads": [e.to_dict() for e in self.event_reads],
            "imports": dict(self.imports),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ModuleIndex":
        return cls(
            module=payload["module"], path=payload["path"],
            relpath=payload["relpath"],
            classes={k: ClassInfo.from_dict(v)
                     for k, v in payload["classes"].items()},
            functions={k: FunctionInfo.from_dict(v)
                       for k, v in payload["functions"].items()},
            configs=[ConfigInfo.from_dict(c) for c in payload["configs"]],
            metric_defs=[MetricDef.from_dict(m)
                         for m in payload["metric_defs"]],
            metric_reads=[MetricRead.from_dict(m)
                          for m in payload["metric_reads"]],
            event_emits=[EventEmit.from_dict(e)
                         for e in payload["event_emits"]],
            event_reads=[EventRead.from_dict(e)
                         for e in payload["event_reads"]],
            imports=dict(payload["imports"]),
        )


def module_name_for(relpath: str) -> str:
    """``repro/service/supervisor.py`` → ``repro.service.supervisor``."""
    name = relpath[:-3] if relpath.endswith(".py") else relpath
    name = name.replace("/", ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


def _annotation_text(node: Optional[ast.AST]) -> str:
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    try:
        return ast.unparse(node)
    except (ValueError, RecursionError):  # pragma: no cover - best-effort
        return ""


def _strip_optional(text: str) -> Tuple[str, bool]:
    """``Optional[CheckpointStore]`` → (``CheckpointStore``, True)."""
    text = text.strip().strip('"').strip("'")
    for prefix in ("Optional[", "typing.Optional["):
        if text.startswith(prefix) and text.endswith("]"):
            return text[len(prefix):-1].strip(), True
    return text, False


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` expression → ``"a.b.c"``; None for anything fancier."""
    parts: List[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    return ".".join(reversed(parts))


class _Imports:
    """The file's import table; resolves local names to dotted targets."""

    def __init__(self, tree: ast.Module) -> None:
        self.table: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.table[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.table[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, dotted: str) -> str:
        root, _, rest = dotted.partition(".")
        if root in self.table:
            resolved = self.table[root]
            return f"{resolved}.{rest}" if rest else resolved
        return dotted


class _AttrTyper:
    """Infers candidate types for ``self.<attr>`` within one class."""

    def __init__(self, cls: ast.ClassDef, imports: _Imports,
                 local_classes: Set[str]) -> None:
        self.types: Dict[str, List[str]] = {}
        self._imports = imports
        self._local_classes = local_classes
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_method(item)

    def _add(self, attr: str, type_name: Optional[str]) -> None:
        if not type_name:
            return
        bucket = self.types.setdefault(attr, [])
        if type_name not in bucket:
            bucket.append(type_name)

    def _scan_method(self, fn: ast.AST) -> None:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        params: Dict[str, str] = {}
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            text, _ = _strip_optional(_annotation_text(arg.annotation))
            if text:
                params[arg.arg] = text
        for node in ast.walk(fn):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                ann, _ = _strip_optional(_annotation_text(node.annotation))
                for target in targets:
                    if self._is_self_attr(target):
                        assert isinstance(target, ast.Attribute)
                        self._add(target.attr, self._qualify(ann))
                value = node.value
            if value is None:
                continue
            for target in targets:
                if not self._is_self_attr(target):
                    continue
                assert isinstance(target, ast.Attribute)
                for inferred in self._infer(value, params):
                    self._add(target.attr, inferred)

    @staticmethod
    def _is_self_attr(node: ast.AST) -> bool:
        return (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self")

    def _qualify(self, name: str) -> Optional[str]:
        if not name or not name[:1].isalpha():
            return None
        head = name.split("[")[0]
        return self._imports.resolve(head)

    def _infer(self, value: ast.expr, params: Dict[str, str]) -> Iterator[str]:
        """Candidate types of an assigned expression."""
        if isinstance(value, ast.Call):
            dotted = _dotted_name(value.func)
            if dotted is not None:
                tail = dotted.rsplit(".", 1)[-1]
                if tail[:1].isupper():  # constructor call by convention
                    resolved = self._imports.resolve(dotted)
                    yield resolved
        elif isinstance(value, ast.Name):
            if value.id in params:
                qualified = self._qualify(params[value.id])
                if qualified:
                    yield qualified
        elif isinstance(value, ast.IfExp):
            for branch in (value.body, value.orelse):
                yield from self._infer(branch, params)


def _extract_calls(fn: ast.AST, imports: _Imports,
                   shadowed: Set[str]) -> Tuple[List[CallEdge],
                                                List[BlockingSite]]:
    """Outgoing edges + direct blocking sites of one function body
    (lambda bodies folded in, nested ``def``s excluded)."""
    calls: List[CallEdge] = []
    blocking: List[BlockingSite] = []

    # A local rebinding (`open = self.cache_get`) or parameter shadows
    # the blocking builtin for the whole function body.
    shadowed = set(shadowed)
    args = fn.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs
                + [a for a in (args.vararg, args.kwarg) if a]):
        shadowed.add(arg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            shadowed.add(node.id)

    def resolve_callee(func: ast.expr) -> Optional[Tuple[str, str]]:
        """(kind, target) for a callable expression, or None."""
        if isinstance(func, ast.Name):
            return "name", imports.resolve(func.id)
        if isinstance(func, ast.Attribute):
            dotted = _dotted_name(func)
            if dotted is None:
                return None
            parts = dotted.split(".")
            if parts[0] == "self":
                if len(parts) == 2:
                    return "self", parts[1]
                if len(parts) == 3:
                    return "selfattr", f"{parts[1]}.{parts[2]}"
                return None
            return "name", imports.resolve(dotted)
        return None

    def is_offload(target: str) -> bool:
        return (target in OFFLOAD_CALLS
                or target.rsplit(".", 1)[-1] == "run_in_executor")

    def note_blocking(node: ast.Call, target: str) -> None:
        display = target
        if target in BLOCKING_CALLS or (
                target in _BLOCKING_BUILTINS and target not in shadowed):
            blocking.append(BlockingSite(
                symbol=display, lineno=node.lineno, col=node.col_offset))

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs own their bodies
            if isinstance(child, ast.Call):
                resolved = resolve_callee(child.func)
                offloading = False
                if resolved is not None:
                    kind, target = resolved
                    if kind == "name":
                        note_blocking(child, target)
                    # Any callee kind can offload: `asyncio.to_thread`
                    # resolves as "name", but `self.loop.run_in_executor`
                    # is "selfattr" and a `run_in_executor` method on
                    # self is "self" — all exempt their argument refs.
                    offloading = is_offload(target)
                    calls.append(CallEdge(kind=kind, target=target,
                                          lineno=child.lineno))
                # References passed as arguments count as edges unless
                # the callee offloads them to a worker thread.
                if not offloading:
                    for arg in list(child.args) + [
                            kw.value for kw in child.keywords]:
                        ref = resolve_callee(arg) if isinstance(
                            arg, (ast.Name, ast.Attribute)) else None
                        if ref is not None:
                            kind, target = ref
                            if kind == "name" and "." not in target:
                                # A bare local name is almost always a
                                # variable, not a function reference.
                                if target not in imports.table:
                                    continue
                            calls.append(CallEdge(
                                kind=kind, target=target,
                                lineno=getattr(arg, "lineno", child.lineno),
                                is_ref=True))
            visit(child)

    visit(fn)
    return calls, blocking


def _scan_telemetry(tree: ast.Module) -> Tuple[List[MetricDef],
                                               List[MetricRead],
                                               List[EventEmit],
                                               List[EventRead]]:
    """Literal metric registrations/reads and event emits/reads."""
    defs: List[MetricDef] = []
    reads: List[MetricRead] = []
    emits: List[EventEmit] = []
    event_reads: List[EventRead] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        first = node.args[0] if node.args else None
        literal = (first.value if isinstance(first, ast.Constant)
                   and isinstance(first.value, str) else None)
        if func.attr in _METRIC_FACTORIES and literal is not None:
            defs.append(MetricDef(name=literal, kind=func.attr,
                                  lineno=node.lineno))
        elif func.attr == "get" and literal is not None:
            # Only `registry.get("dotted.name")` shapes count: require a
            # receiver named `registry` (or `.registry`) and a dotted
            # literal, so plain dict lookups never match.
            receiver = _dotted_name(func.value)
            if receiver is not None and \
                    receiver.split(".")[-1] == "registry" and \
                    "." in literal:
                reads.append(MetricRead(name=literal, lineno=node.lineno,
                                        col=node.col_offset))
        elif func.attr == "emit" and literal is not None:
            receiver = _dotted_name(func.value)
            if receiver is not None and \
                    receiver.split(".")[-1] in ("tracer", "self"):
                emits.append(EventEmit(kind=literal, lineno=node.lineno))
        elif func.attr == "of_kind" and literal is not None:
            event_reads.append(EventRead(kind=literal, lineno=node.lineno,
                                         col=node.col_offset))
    return defs, reads, emits, event_reads


def _scan_configs(tree: ast.Module) -> List[ConfigInfo]:
    configs: List[ConfigInfo] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith("Config") or node.name.startswith("_"):
            continue
        decorated = any(
            (isinstance(d, ast.Name) and d.id == "dataclass")
            or (isinstance(d, ast.Attribute) and d.attr == "dataclass")
            or (isinstance(d, ast.Call) and (
                (isinstance(d.func, ast.Name) and d.func.id == "dataclass")
                or (isinstance(d.func, ast.Attribute)
                    and d.func.attr == "dataclass")))
            for d in node.decorator_list
        )
        if not decorated:
            continue
        info = ConfigInfo(cls=node.name, lineno=node.lineno)
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name):
                ann = _annotation_text(item.annotation)
                if ann.split("[")[0].rsplit(".", 1)[-1] == "ClassVar":
                    continue
                stripped, optional = _strip_optional(ann)
                has_none_default = (isinstance(item.value, ast.Constant)
                                    and item.value.value is None)
                info.fields.append(ConfigField(
                    name=item.target.id, annotation=stripped,
                    lineno=item.lineno,
                    optional=optional or has_none_default,
                    has_default=item.value is not None,
                ))
            elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and item.name == "__post_init__":
                info.has_post_init = True
                refs: Set[str] = set()
                for sub in ast.walk(item):
                    if isinstance(sub, ast.Attribute) and \
                            isinstance(sub.value, ast.Name) and \
                            sub.value.id == "self":
                        refs.add(sub.attr)
                    elif isinstance(sub, ast.Name):
                        refs.add(sub.id)
                info.post_init_refs = sorted(refs)
        configs.append(info)
    return configs


def build_module_index(tree: ast.Module, path: str,
                       relpath: str) -> ModuleIndex:
    """Extract one file's :class:`ModuleIndex` from its parsed tree."""
    imports = _Imports(tree)
    index = ModuleIndex(
        module=module_name_for(relpath), path=path, relpath=relpath,
        imports=dict(imports.table),
    )
    shadowed = set(imports.table)

    local_classes = {
        node.name for node in tree.body if isinstance(node, ast.ClassDef)
    }

    def record_function(fn: ast.AST, cls: Optional[str]) -> None:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        calls, blocking = _extract_calls(fn, imports, shadowed)
        info = FunctionInfo(
            name=fn.name, cls=cls, lineno=fn.lineno,
            is_async=isinstance(fn, ast.AsyncFunctionDef),
            calls=calls, blocking=blocking,
        )
        index.functions[info.qualname] = info

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            record_function(node, None)
        elif isinstance(node, ast.ClassDef):
            typer = _AttrTyper(node, imports, local_classes)
            cls_info = ClassInfo(
                name=node.name, lineno=node.lineno,
                attr_types=typer.types,
                methods=[item.name for item in node.body
                         if isinstance(item, (ast.FunctionDef,
                                              ast.AsyncFunctionDef))],
            )
            index.classes[node.name] = cls_info
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    record_function(item, node.name)

    (index.metric_defs, index.metric_reads,
     index.event_emits, index.event_reads) = _scan_telemetry(tree)
    index.configs = _scan_configs(tree)
    return index


@dataclass(frozen=True)
class _FuncKey:
    """Identity of one function in the project graph."""

    module: str
    qualname: str


class ProjectIndex:
    """All module indexes stitched together with resolved symbols."""

    def __init__(self, modules: List[ModuleIndex]) -> None:
        self.modules: Dict[str, ModuleIndex] = {
            m.module: m for m in modules
        }
        #: class name (bare) → [(module, ClassInfo)]
        self._classes_by_name: Dict[str, List[Tuple[str, ClassInfo]]] = {}
        for mod in self.modules.values():
            for cls in mod.classes.values():
                self._classes_by_name.setdefault(cls.name, []).append(
                    (mod.module, cls))
        self._reach_cache: Dict[_FuncKey,
                                Dict[str, Tuple[BlockingSite, str,
                                                Tuple[str, ...]]]] = {}

    # -- symbol resolution -------------------------------------------------------

    def resolve_class(self, name: str,
                      module: str) -> Optional[Tuple[str, ClassInfo]]:
        """A (possibly dotted) class name → (defining module, info)."""
        bare = name.rsplit(".", 1)[-1]
        if "." in name:
            mod_part = name.rsplit(".", 1)[0]
            owner = self.modules.get(mod_part)
            if owner is not None and bare in owner.classes:
                return mod_part, owner.classes[bare]
            # One level of package re-export: repro.service.ChurnQueue
            # actually lives in repro.service.churnqueue.
            for candidate_mod, info in self._classes_by_name.get(bare, []):
                if candidate_mod.startswith(mod_part):
                    return candidate_mod, info
        local = self.modules.get(module)
        if local is not None and bare in local.classes:
            return module, local.classes[bare]
        candidates = self._classes_by_name.get(bare, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _function(self, module: str,
                  qualname: str) -> Optional[FunctionInfo]:
        mod = self.modules.get(module)
        if mod is None:
            return None
        return mod.functions.get(qualname)

    def _resolve_edge(self, key: _FuncKey,
                      edge: CallEdge) -> List[_FuncKey]:
        """All project functions an edge may land on."""
        mod = self.modules[key.module]
        cls_name = key.qualname.split(".")[0] if "." in key.qualname \
            else None
        out: List[_FuncKey] = []
        if edge.kind == "self" and cls_name is not None:
            qual = f"{cls_name}.{edge.target}"
            if qual in mod.functions:
                out.append(_FuncKey(key.module, qual))
        elif edge.kind == "selfattr" and cls_name is not None:
            attr, _, method = edge.target.partition(".")
            cls_info = mod.classes.get(cls_name)
            if cls_info is None:
                return out
            for type_name in cls_info.attr_types.get(attr, []):
                resolved = self.resolve_class(type_name, key.module)
                if resolved is None:
                    continue
                owner_mod, owner_cls = resolved
                qual = f"{owner_cls.name}.{method}"
                if self._function(owner_mod, qual) is not None:
                    out.append(_FuncKey(owner_mod, qual))
        elif edge.kind == "name":
            target = edge.target
            if "." not in target:
                if target in mod.functions:
                    out.append(_FuncKey(key.module, target))
                elif target in mod.classes:
                    qual = f"{target}.__init__"
                    if qual in mod.functions:
                        out.append(_FuncKey(key.module, qual))
                return out
            owner, _, fname = target.rpartition(".")
            # module-level function in a known module
            if owner in self.modules and \
                    fname in self.modules[owner].functions:
                out.append(_FuncKey(owner, fname))
                return out
            # class constructor (dotted class name)
            resolved = self.resolve_class(target, key.module)
            if resolved is not None:
                owner_mod, owner_cls = resolved
                qual = f"{owner_cls.name}.__init__"
                if self._function(owner_mod, qual) is not None:
                    out.append(_FuncKey(owner_mod, qual))
        return out

    # -- blocking reachability ---------------------------------------------------

    def blocking_reachable(
        self, module: str, qualname: str,
    ) -> Dict[str, Tuple[BlockingSite, str, Tuple[str, ...]]]:
        """Blocking sites reachable from one function.

        Returns ``{site_id: (site, owning_module, call_chain)}`` where
        ``call_chain`` is the sequence of ``module:qualname`` hops from
        the origin (exclusive) to the function containing the site
        (inclusive).  BFS order makes each chain a shortest witness.
        """
        origin = _FuncKey(module, qualname)
        cached = self._reach_cache.get(origin)
        if cached is not None:
            return cached
        found: Dict[str, Tuple[BlockingSite, str, Tuple[str, ...]]] = {}
        seen: Set[_FuncKey] = {origin}
        frontier: List[Tuple[_FuncKey, Tuple[str, ...]]] = [(origin, ())]
        while frontier:
            next_frontier: List[Tuple[_FuncKey, Tuple[str, ...]]] = []
            for key, chain in frontier:
                info = self._function(key.module, key.qualname)
                if info is None:
                    continue
                for site in info.blocking:
                    site_id = f"{key.module}:{site.lineno}:{site.symbol}"
                    if site_id not in found:
                        found[site_id] = (site, key.module, chain)
                for edge in info.calls:
                    for target in self._resolve_edge(key, edge):
                        if target in seen:
                            continue
                        seen.add(target)
                        next_frontier.append(
                            (target,
                             chain + (f"{target.module.rsplit('.', 1)[-1]}"
                                      f".{target.qualname}",)))
            frontier = next_frontier
        self._reach_cache[origin] = found
        return found

    # -- aggregate views ---------------------------------------------------------

    def async_functions(self) -> Iterator[Tuple[ModuleIndex, FunctionInfo]]:
        for mod in self.modules.values():
            for info in mod.functions.values():
                if info.is_async:
                    yield mod, info

    def metric_names(self) -> Dict[str, List[Tuple[str, MetricDef]]]:
        """Every registered metric name → [(module, def)]."""
        out: Dict[str, List[Tuple[str, MetricDef]]] = {}
        for mod in self.modules.values():
            for definition in mod.metric_defs:
                out.setdefault(definition.name, []).append(
                    (mod.module, definition))
        return out

    def event_kinds(self) -> Set[str]:
        """Every trace-event kind emitted anywhere in the project."""
        kinds: Set[str] = set()
        for mod in self.modules.values():
            for emit in mod.event_emits:
                kinds.add(emit.kind)
        return kinds
