"""The linting engine: discovery, two-pass analysis, suppression.

The engine is deliberately dependency-free (stdlib ``ast`` + the rule
catalog) so the gate can run in any environment the library itself runs
in — including CI containers without third-party linters installed.

Analysis is two-pass:

* **pass 1** runs the per-file rules over each parsed module (optionally
  served from the content-hash :mod:`~repro.statan.cache`), and extracts
  a :class:`~repro.statan.project.ModuleIndex` as a side effect;
* **pass 2** assembles the indexes into a
  :class:`~repro.statan.project.ProjectIndex` and runs the
  whole-program rules (REP011, REP014, REP015) over it.  Pass-2 findings
  anchor at real source lines, so the same inline suppression machinery
  applies.

:func:`lint_source` stays pass-1-only: a single in-memory module has no
project to index.  Whole-program verdicts come from :func:`lint_paths`.
"""

from __future__ import annotations

import ast
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import StaticAnalysisError
from repro.statan.baseline import apply_baseline, assign_fingerprints
from repro.statan.cache import (
    AnalysisCache,
    CacheEntry,
    rules_salt,
    source_digest,
)
from repro.statan.findings import Finding, Severity
from repro.statan.project import ModuleIndex, ProjectIndex, \
    build_module_index
from repro.statan.rules import FileContext, ProjectRule, Rule, get_rules
from repro.statan.suppress import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
)

__all__ = ["LintResult", "LintStats", "lint_source", "lint_file",
           "lint_paths", "PARSE_ERROR", "STA_STALE"]

#: Rule id reported for files the parser rejects.
PARSE_ERROR = "STA000"
#: Rule id for suppressions that no longer suppress anything.
STA_STALE = "STA003"


def _order(finding: Finding) -> Tuple[str, int, int, str]:
    return (finding.relpath, finding.line, finding.col, finding.rule_id)


@dataclass
class LintStats:
    """Run accounting for ``repro lint --stats`` and CI timing lines."""

    files: int = 0
    pass1_seconds: float = 0.0
    pass2_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    baselined: int = 0

    @property
    def total_seconds(self) -> float:
        return self.pass1_seconds + self.pass2_seconds

    def render(self) -> str:
        cache = "off"
        if self.cache_hits or self.cache_misses:
            cache = f"{self.cache_hits} hit / {self.cache_misses} miss"
        return (
            f"statan: {self.files} file(s) in {self.total_seconds:.2f}s "
            f"(pass1 {self.pass1_seconds:.2f}s, "
            f"pass2 {self.pass2_seconds:.2f}s; cache {cache}; "
            f"{self.baselined} baselined)"
        )


@dataclass
class LintResult:
    """Outcome of one engine run over any number of files."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings matched by the adopt-new-rules baseline (don't gate).
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    stats: LintStats = field(default_factory=LintStats)

    @property
    def ok(self) -> bool:
        return not self.findings

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.baselined.extend(other.baselined)
        self.files_checked += other.files_checked

    def sort(self) -> None:
        self.findings.sort(key=_order)
        self.suppressed.sort(key=_order)
        self.baselined.sort(key=_order)


_RELPATH_ROOTS = ("repro", "tests", "benchmarks")


def package_relpath(path: str) -> str:
    """Normalize a filesystem path to the package-rooted posix form used
    for rule scoping and baseline stability: ``src/repro/core/x.py`` →
    ``repro/core/x.py``, ``/repo/tests/t.py`` → ``tests/t.py``.  Paths
    without a known root segment are kept as given (posix-ified)."""
    parts = os.path.normpath(path).replace(os.sep, "/").split("/")
    for i, part in enumerate(parts[:-1] if len(parts) > 1 else parts):
        if part in _RELPATH_ROOTS:
            return "/".join(parts[i:])
    return "/".join(parts)


@dataclass
class _FileOutcome:
    """Everything pass 1 learned about one file."""

    path: str
    relpath: str
    lines: Sequence[str]
    findings: List[Finding]
    suppressed: List[Finding]
    suppressions: Dict[int, Suppression]
    index: Optional[ModuleIndex]


def lint_source(
    source: str,
    relpath: str,
    *,
    path: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint one in-memory module (pass 1 only); ``relpath`` drives rule
    scoping.  Project rules need :func:`lint_paths`."""
    path = path if path is not None else relpath
    active = list(rules) if rules is not None else get_rules()
    result = LintResult(files_checked=1)
    outcome = _lint_one(source, path, relpath, active)
    result.findings.extend(outcome.findings)
    result.suppressed.extend(outcome.suppressed)
    result.sort()
    return result


def _lint_one(source: str, path: str, relpath: str,
              rules: Sequence[Rule],
              want_index: bool = False) -> _FileOutcome:
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        finding = Finding(
            rule_id=PARSE_ERROR,
            message=f"cannot parse: {exc}",
            path=path, relpath=relpath,
            line=getattr(exc, "lineno", None) or 1,
            severity=Severity.ERROR,
        )
        return _FileOutcome(path=path, relpath=relpath, lines=lines,
                            findings=[finding], suppressed=[],
                            suppressions={}, index=None)

    ctx = FileContext(path=path, relpath=relpath, source=source, tree=tree)
    raw: List[Finding] = []
    for rule in rules:
        if not rule.is_project_rule and rule.applies_to(relpath):
            raw.extend(rule.check(ctx))

    suppressions, directive_problems = parse_suppressions(
        source, path, relpath
    )
    kept, suppressed = apply_suppressions(raw, suppressions)
    findings = directive_problems + kept
    index = build_module_index(tree, path, relpath) if want_index else None
    return _FileOutcome(path=path, relpath=relpath, lines=lines,
                        findings=findings, suppressed=suppressed,
                        suppressions=suppressions, index=index)


def lint_file(
    path: str,
    *,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise StaticAnalysisError(f"cannot read {path!r}: {exc}") from exc
    return lint_source(
        source, package_relpath(path), path=path, rules=rules
    )


def discover(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d != "__pycache__" and not d.startswith(".")
                )
                found.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames) if name.endswith(".py")
                )
        elif os.path.isfile(path):
            found.append(path)
        else:
            raise StaticAnalysisError(f"no such file or directory: {path!r}")
    return found


def _stale_suppression_findings(
    outcomes: Sequence[_FileOutcome],
    used_lines: Dict[str, set],
) -> List[Finding]:
    """STA003 for directives that suppressed nothing in either pass."""
    stale: List[Finding] = []
    for outcome in outcomes:
        used = used_lines.get(outcome.path, set())
        for line, directive in sorted(outcome.suppressions.items()):
            if line in used:
                continue
            ids = ", ".join(directive.rule_ids)
            stale.append(Finding(
                rule_id=STA_STALE,
                message=(
                    f"stale suppression: {ids} did not fire on this "
                    "line; remove the directive (or fix the rule id) "
                    "so dead waivers don't mask future findings"
                ),
                path=outcome.path, relpath=outcome.relpath, line=line,
                severity=Severity.ERROR,
            ))
    return stale


def lint_paths(
    paths: Iterable[str],
    *,
    select: Optional[Iterable[str]] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Dict[str, Dict[str, object]]] = None,
    cache_path: Optional[str] = None,
) -> Tuple[LintResult, List[str]]:
    """Two-pass lint over files and directories.

    Returns ``(result, files-checked)``.  ``baseline`` (from
    :func:`repro.statan.baseline.load_baseline`) reclassifies known
    findings into ``result.baselined``; ``cache_path`` enables the
    content-hash incremental cache.  Stale-suppression findings
    (``STA003``) are only emitted when the full catalog runs — a
    narrowed run cannot tell stale from out-of-scope.
    """
    full_catalog = rules is None and select is None
    if rules is None:
        rules = get_rules(select)
    elif select is not None:
        raise StaticAnalysisError("pass either `rules` or `select`, not both")
    files = discover(paths)

    cache: Optional[AnalysisCache] = None
    if cache_path is not None:
        cache = AnalysisCache(cache_path, rules_salt(rules))

    result = LintResult()
    outcomes: List[_FileOutcome] = []
    started = time.perf_counter()
    for file_path in files:
        try:
            with open(file_path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise StaticAnalysisError(
                f"cannot read {file_path!r}: {exc}") from exc
        relpath = package_relpath(file_path)
        entry: Optional[CacheEntry] = None
        digest = ""
        if cache is not None:
            digest = source_digest(source)
            entry = cache.lookup(file_path, digest)
        if entry is not None:
            outcome = _FileOutcome(
                path=file_path, relpath=relpath,
                lines=source.splitlines(),
                findings=list(entry.findings),
                suppressed=list(entry.suppressed),
                suppressions=dict(entry.suppressions),
                index=entry.index,
            )
        else:
            outcome = _lint_one(source, file_path, relpath, rules,
                                want_index=True)
            if cache is not None and outcome.index is not None:
                cache.store(file_path, CacheEntry(
                    digest=digest or source_digest(source),
                    findings=list(outcome.findings),
                    suppressed=list(outcome.suppressed),
                    suppressions=dict(outcome.suppressions),
                    index=outcome.index,
                ))
        outcomes.append(outcome)
        result.files_checked += 1
    pass1_seconds = time.perf_counter() - started

    # -- pass 2: whole-program rules over the assembled index ------------
    started = time.perf_counter()
    project_rules = [r for r in rules
                     if isinstance(r, ProjectRule) and r.is_project_rule]
    indexes = [o.index for o in outcomes if o.index is not None]
    suppressions_by_path = {o.path: o.suppressions for o in outcomes}
    project_findings: List[Finding] = []
    project_suppressed: List[Finding] = []
    if project_rules and indexes:
        index = ProjectIndex(indexes)
        for rule in project_rules:
            for finding in rule.check_project(index):
                directives = suppressions_by_path.get(finding.path, {})
                directive = directives.get(finding.line)
                if directive is not None and \
                        finding.rule_id in directive.rule_ids:
                    project_suppressed.append(finding)
                else:
                    project_findings.append(finding)
    pass2_seconds = time.perf_counter() - started

    for outcome in outcomes:
        result.findings.extend(outcome.findings)
        result.suppressed.extend(outcome.suppressed)
    result.findings.extend(project_findings)
    result.suppressed.extend(project_suppressed)

    if full_catalog:
        used_lines: Dict[str, set] = {}
        for finding in result.suppressed:
            used_lines.setdefault(finding.path, set()).add(finding.line)
        result.findings.extend(
            _stale_suppression_findings(outcomes, used_lines))

    # -- fingerprints + baseline ------------------------------------------
    lines_by_path: Dict[str, Sequence[str]] = {
        o.path: o.lines for o in outcomes
    }
    assign_fingerprints(result.findings, lines_by_path)
    assign_fingerprints(result.suppressed, lines_by_path)
    if baseline is not None:
        fresh, known = apply_baseline(result.findings, baseline)
        result.findings = fresh
        result.baselined = known

    if cache is not None:
        cache.save()
        result.stats.cache_hits = cache.hits
        result.stats.cache_misses = cache.misses
    result.stats.files = result.files_checked
    result.stats.pass1_seconds = pass1_seconds
    result.stats.pass2_seconds = pass2_seconds
    result.stats.baselined = len(result.baselined)
    result.sort()
    return result, files
