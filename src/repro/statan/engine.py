"""The linting engine: discovery, parsing, rule dispatch, suppression.

The engine is deliberately dependency-free (stdlib ``ast`` + the rule
catalog) so the gate can run in any environment the library itself runs
in — including CI containers without third-party linters installed.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import StaticAnalysisError
from repro.statan.findings import Finding, Severity
from repro.statan.rules import FileContext, Rule, get_rules
from repro.statan.suppress import apply_suppressions, parse_suppressions

__all__ = ["LintResult", "lint_source", "lint_file", "lint_paths",
           "PARSE_ERROR"]

#: Rule id reported for files the parser rejects.
PARSE_ERROR = "STA000"


def _order(finding: Finding) -> Tuple[str, int, int, str]:
    return (finding.relpath, finding.line, finding.col, finding.rule_id)


@dataclass
class LintResult:
    """Outcome of one engine run over any number of files."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked

    def sort(self) -> None:
        self.findings.sort(key=_order)
        self.suppressed.sort(key=_order)


def package_relpath(path: str) -> str:
    """Normalize a filesystem path to the package-rooted posix form used
    for rule scoping: ``src/repro/core/x.py`` → ``repro/core/x.py``.
    Paths without a ``repro`` segment are kept as given (posix-ified)."""
    parts = os.path.normpath(path).replace(os.sep, "/").split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return "/".join(parts)


def lint_source(
    source: str,
    relpath: str,
    *,
    path: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint one in-memory module; ``relpath`` drives rule scoping."""
    path = path if path is not None else relpath
    active = list(rules) if rules is not None else get_rules()
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        result.findings.append(Finding(
            rule_id=PARSE_ERROR,
            message=f"cannot parse: {exc}",
            path=path, relpath=relpath,
            line=getattr(exc, "lineno", None) or 1,
            severity=Severity.ERROR,
        ))
        return result

    ctx = FileContext(path=path, relpath=relpath, source=source, tree=tree)
    raw: List[Finding] = []
    for rule in active:
        if rule.applies_to(relpath):
            raw.extend(rule.check(ctx))

    suppressions, directive_problems = parse_suppressions(
        source, path, relpath
    )
    kept, suppressed = apply_suppressions(raw, suppressions)
    result.findings.extend(directive_problems)
    result.findings.extend(kept)
    result.suppressed.extend(suppressed)
    result.sort()
    return result


def lint_file(
    path: str,
    *,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise StaticAnalysisError(f"cannot read {path!r}: {exc}") from exc
    return lint_source(
        source, package_relpath(path), path=path, rules=rules
    )


def discover(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d != "__pycache__" and not d.startswith(".")
                )
                found.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames) if name.endswith(".py")
                )
        elif os.path.isfile(path):
            found.append(path)
        else:
            raise StaticAnalysisError(f"no such file or directory: {path!r}")
    return found


def lint_paths(
    paths: Iterable[str],
    *,
    select: Optional[Iterable[str]] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[LintResult, List[str]]:
    """Lint files and directories; returns (result, files-checked)."""
    if rules is None:
        rules = get_rules(select)
    elif select is not None:
        raise StaticAnalysisError("pass either `rules` or `select`, not both")
    files = discover(paths)
    result = LintResult()
    for file_path in files:
        result.extend(lint_file(file_path, rules=rules))
    result.sort()
    return result, files
