"""``repro.statan`` — the repo's own AST-based invariant linter.

The runtime test suite proves the repo's load-bearing guarantees
(bitwise-identical scalar/vectorized trajectories, seed-reproducible
chaos runs, agent-local protocol state) *after the fact*; this package
enforces the coding invariants behind those guarantees *before*
execution, in the spirit of static schedulability analysis for
distributed real-time programs (Kermia, arXiv:1301.4800) and of
sanitizer/race-detector tooling for numeric stacks.

Entry points:

* ``python -m repro lint [paths…]`` — the CLI gate (wired into CI);
* :func:`repro.statan.engine.lint_paths` — library API;
* :data:`repro.statan.rules.ALL_RULES` — the rule catalog (REP001…).

See ``docs/STATIC_ANALYSIS.md`` for the rule catalog with rationale and
the suppression policy (``# statan: disable=RULE -- justification``).
"""

from repro.statan.findings import Finding, Severity
from repro.statan.engine import LintResult, lint_file, lint_paths, lint_source
from repro.statan.rules import ALL_RULES, Rule, get_rules

__all__ = [
    "Finding",
    "Severity",
    "LintResult",
    "lint_file",
    "lint_paths",
    "lint_source",
    "ALL_RULES",
    "Rule",
    "get_rules",
]
