"""REP009 — experiment drivers must register an ExperimentSpec."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statan.findings import Finding
from repro.statan.rules import FileContext, Rule

__all__ = ["UnregisteredExperiment"]

#: Fully-qualified names a registration call may resolve to.
_REGISTER_TARGETS = (
    "repro.harness.register",
    "repro.harness.spec.register",
)


class UnregisteredExperiment(Rule):
    """REP009: a driver defining ``main()`` must call
    ``repro.harness.register`` at module level."""

    rule_id = "REP009"
    name = "unregistered-experiment"
    rationale = (
        "Every surface — the `repro experiment` CLI, the benchmark "
        "suite, the `--all` reproduction scorecard — dispatches through "
        "the harness registry. A driver module that defines `main()` "
        "without registering an ExperimentSpec is invisible to all of "
        "them: its claims never land on the scorecard and silently stop "
        "being checked."
    )
    scopes = ("repro/experiments/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        mains = [
            node for node in ctx.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "main"
        ]
        if not mains:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                qualified = ctx.qualified_name(node.func)
                if qualified in _REGISTER_TARGETS:
                    return
        yield self.finding(
            ctx, mains[0],
            "experiment driver defines `main()` but never registers an "
            "ExperimentSpec via `repro.harness.register`; its claims "
            "cannot appear on the reproduction scorecard",
            function="main",
        )
