"""REP003 — no silently swallowed broad exceptions."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statan.findings import Finding
from repro.statan.rules import FileContext, Rule

__all__ = ["SwallowedException"]

_BROAD = frozenset({"Exception", "BaseException"})
_LOG_METHODS = frozenset({
    "debug", "info", "warning", "error", "exception", "critical", "log",
})


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:``, ``except Exception``, or a tuple containing one."""
    node = handler.type
    if node is None:
        return True
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for cand in candidates:
        if isinstance(cand, ast.Name) and cand.id in _BROAD:
            return True
        if isinstance(cand, ast.Attribute) and cand.attr in _BROAD:
            return True
    return False


def _handler_recovers(handler: ast.ExceptHandler) -> bool:
    """True when the body re-raises or logs the failure."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _LOG_METHODS:
            return True
    return False


class SwallowedException(Rule):
    """REP003: broad handlers must log and/or re-raise, never swallow."""

    rule_id = "REP003"
    name = "swallowed-exception"
    rationale = (
        "A broad `except Exception` that neither logs nor re-raises hides "
        "mid-simulation failures, silently corrupting the virtual timeline "
        "(the sim engine's callback guard logs *and* re-raises for exactly "
        "this reason). Narrow handlers remain free to recover quietly."
    )
    scopes = ()  # everywhere

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad_handler(node) and not _handler_recovers(node):
                caught = "bare except" if node.type is None else \
                    "except over Exception/BaseException"
                yield self.finding(
                    ctx, node,
                    f"{caught} swallows the failure; log it and/or "
                    "re-raise (or narrow the exception type)",
                )
