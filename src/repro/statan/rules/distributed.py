"""REP004 — agent-locality: a lightweight race detector for the protocol.

Section 4.1's decomposition only holds if every agent computes from its
*own* state plus what arrived in messages.  Reaching across the bus into
another agent's attributes is the simulated-protocol equivalent of a
data race: it works under the synchronous in-process scheduler and
silently breaks under real distribution, message loss, or chaos
scenarios.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.statan.findings import Finding
from repro.statan.rules import FileContext, Rule

__all__ = ["CrossAgentAccess"]

#: Attribute/registry names whose lookup yields *another* agent object.
_AGENT_REGISTRIES = frozenset({"agents", "controllers", "resource_agents"})
_AGENT_LOOKUPS = frozenset({"agent", "get_agent", "lookup_agent", "peer"})

#: Parameters that legitimately carry cross-agent data: the message
#: payloads themselves.
_MESSAGE_PARAMS = ("envelope", "message", "msg", "payload")


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_agent_lookup(node: ast.AST) -> bool:
    """``<x>.agents[...]``, ``<x>.agents.get(...)``, ``<x>.get_agent(...)``."""
    if isinstance(node, ast.Subscript):
        value = node.value
        if isinstance(value, ast.Attribute) and value.attr in _AGENT_REGISTRIES:
            return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _AGENT_LOOKUPS:
                return True
            if func.attr == "get" and isinstance(func.value, ast.Attribute) \
                    and func.value.attr in _AGENT_REGISTRIES:
                return True
    return False


class CrossAgentAccess(Rule):
    """REP004: agent methods touch only ``self`` state and message payloads."""

    rule_id = "REP004"
    name = "cross-agent-access"
    rationale = (
        "Message handlers that read or mutate another agent's attributes "
        "only work because the simulator runs agents in-process; under "
        "real distribution that state lives on another node. Detecting "
        "registry lookups (`*.agents[...]`) and writes through foreign "
        "objects keeps the protocol honestly message-passing, so chaos "
        "and loss scenarios exercise the same code a deployment would run."
    )
    scopes = ("repro/distributed/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if isinstance(cls, ast.ClassDef) and cls.name.endswith("Agent"):
                for item in cls.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield from self._check_method(ctx, item)

    def _check_method(self, ctx: FileContext,
                      method: ast.FunctionDef) -> Iterator[Finding]:
        args = method.args
        params: List[str] = [a.arg for a in
                             args.posonlyargs + args.args + args.kwonlyargs]
        foreign_params: Set[str] = {
            p for p in params[1:]  # skip self
            if not any(tag in p.lower() for tag in _MESSAGE_PARAMS)
        }
        #: Local names bound to a foreign agent via a registry lookup.
        foreign_locals: Dict[str, int] = {}

        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and _is_agent_lookup(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        foreign_locals[target.id] = node.lineno

        for node in ast.walk(method):
            # Direct chained access: self.bus.agents["x"].price
            if isinstance(node, ast.Attribute) and _is_agent_lookup(node.value):
                yield self.finding(
                    ctx, node,
                    f"`{method.name}` reaches into another agent's "
                    f"`.{node.attr}` via a registry lookup; agents may "
                    "only use `self` state and message payloads",
                    method=method.name, attribute=node.attr,
                )
            # Access through a local bound to a looked-up agent.
            elif isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id in foreign_locals:
                yield self.finding(
                    ctx, node,
                    f"`{method.name}` touches `.{node.attr}` of agent "
                    f"`{node.value.id}` looked up from a registry "
                    f"(line {foreign_locals[node.value.id]}); communicate "
                    "via the bus instead",
                    method=method.name, attribute=node.attr,
                )
            # Mutation through a non-message parameter.
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        root = _root_name(target.value)
                        if root in foreign_params:
                            yield self.finding(
                                ctx, target,
                                f"`{method.name}` writes "
                                f"`{root}.{target.attr}`: mutating a "
                                "parameter that is not `self` or a "
                                "message payload crosses agent state",
                                method=method.name, attribute=target.attr,
                            )
