"""REP010 — span lifetimes are scoped and trace event kinds are static."""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.statan.findings import Finding
from repro.statan.rules import FileContext, Rule

__all__ = ["SpanMisuse"]


def _receiver_root(node: ast.expr) -> str:
    """Last attribute component before the method name (``tracer`` for
    ``self.telemetry.tracer.emit``), or the bare name for ``tracer.emit``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class SpanMisuse(Rule):
    """REP010: ``start_span`` is with-only; ``emit`` kinds are literals."""

    rule_id = "REP010"
    name = "span-misuse"
    rationale = (
        "`start_span` returns a scoped span: if it is not the context "
        "expression of a `with`, nothing guarantees the matching "
        "`span_end`, and the trace reassembles with dangling spans that "
        "break critical-path extraction. Split lifetimes (a message in "
        "flight) must use the explicit `open_span`/`end_span` pair, which "
        "makes the hand-off auditable. Separately, `tracer.emit` with a "
        "computed event kind defeats schema versioning and the replay "
        "filters — every consumer (`repro stats`, `repro diagnose`, "
        "`records_from_trace`) dispatches on literal kinds."
    )
    scopes = ()  # everywhere, including the telemetry hub's own callers

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        with_contexts: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_contexts.add(id(item.context_expr))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "start_span" and id(node) not in with_contexts:
                yield self.finding(
                    ctx, node,
                    "`start_span(...)` used outside a `with` statement; "
                    "scoped spans must be context-managed so the "
                    "`span_end` is guaranteed — for split lifetimes use "
                    "`open_span`/`end_span`",
                    symbol="start_span",
                )
            elif func.attr == "emit" and \
                    _receiver_root(func.value) == "tracer" and node.args:
                kind = node.args[0]
                if not (isinstance(kind, ast.Constant) and
                        isinstance(kind.value, str)):
                    yield self.finding(
                        ctx, node,
                        "`tracer.emit(...)` with a non-literal event "
                        "kind; trace consumers dispatch on literal kinds, "
                        "so computed kinds silently vanish from replay "
                        "and diagnostics",
                        symbol="emit",
                    )
