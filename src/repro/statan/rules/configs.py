"""REP008 — public dataclass configs validate themselves on construction."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statan.findings import Finding
from repro.statan.rules import FileContext, Rule

__all__ = ["ConfigValidation"]


def _is_dataclass_decorator(node: ast.AST) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == "dataclass"
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return False


class ConfigValidation(Rule):
    """REP008: ``@dataclass class *Config`` must define ``__post_init__``."""

    rule_id = "REP008"
    name = "unvalidated-config"
    rationale = (
        "Config dataclasses are the public API surface: a bad knob "
        "(negative iteration budget, loss probability above 1) that "
        "isn't rejected at construction surfaces hundreds of iterations "
        "later as a numeric anomaly that looks like an algorithm bug. "
        "`__post_init__` is the one place dataclasses can centralize "
        "constructor-time validation."
    )
    scopes = ()  # everywhere

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Config") or node.name.startswith("_"):
                continue
            if not any(_is_dataclass_decorator(d) for d in node.decorator_list):
                continue
            has_post_init = any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "__post_init__"
                for item in node.body
            )
            if not has_post_init:
                yield self.finding(
                    ctx, node,
                    f"public dataclass config `{node.name}` has no "
                    "`__post_init__`; validate its fields at "
                    "construction time",
                    cls=node.name,
                )
