"""REP007 — telemetry flows through the hub, never ad-hoc plumbing."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statan.findings import Finding
from repro.statan.rules import FileContext, Rule

__all__ = ["AdHocTelemetry"]

#: Primitives only the hub (``repro.telemetry``) may construct directly.
#: Everything else receives a :class:`repro.telemetry.Telemetry` facade
#: (or uses its ``to_file``/``in_memory``/``disabled`` constructors).
_PRIMITIVES = frozenset({
    "Tracer", "MetricsRegistry", "JsonlFileSink", "LoggingSink",
})
_QUALIFIED_PREFIXES = (
    "repro.telemetry.tracing.", "repro.telemetry.metrics.",
    "repro.telemetry.",
)


class AdHocTelemetry(Rule):
    """REP007: instrumented code emits via the Telemetry facade."""

    rule_id = "REP007"
    name = "ad-hoc-telemetry"
    rationale = (
        "Metrics/trace sinks constructed outside the hub don't share the "
        "run's registry or sinks, so their events are invisible to "
        "`repro trace`/`repro stats` and to the replay==live equality "
        "check. Components take a `Telemetry` facade; only the hub wires "
        "primitives together. (`InMemorySink` stays legal: it is the "
        "documented capture device for assertions and interactive use.)"
    )
    scopes = ()  # everywhere outside the hub itself

    def applies_to(self, relpath: str) -> bool:
        return not relpath.startswith("repro/telemetry/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified_name(node.func)
            if qual is None:
                continue
            base = qual.rsplit(".", 1)[-1]
            if base not in _PRIMITIVES:
                continue
            if qual == base and base not in ctx.imported_names:
                # A locally defined class that happens to share the name.
                continue
            origin = ctx.imported_names.get(base, qual)
            if origin.startswith(_QUALIFIED_PREFIXES) or \
                    qual.startswith(_QUALIFIED_PREFIXES):
                yield self.finding(
                    ctx, node,
                    f"direct construction of telemetry primitive "
                    f"`{base}`; use the `Telemetry` facade "
                    "(`Telemetry.to_file(...)`, `telemetry.registry`, "
                    "`telemetry.add_sink(...)`) so events share the "
                    "run's hub",
                    symbol=base,
                )
