"""REP011–REP013 — async-safety for the always-on service loop.

PR 7–8 made the reproduction an asyncio service: the tick loop, churn
producers, and queries cooperate on one event loop.  That buys cheap
concurrency and three new ways to be subtly wrong, one rule each:

* **REP011** — a blocking call (file I/O, ``time.sleep``, subprocess)
  reachable from an ``async def`` stalls *every* coroutine sharing the
  loop: a checkpoint write on a slow disk freezes query serving for the
  duration.  This is the whole-program rule: it follows the project call
  graph (``run → tick → _guarded_snapshot → CheckpointStore.save →
  os.fdopen``), not just the async body's own statements.
* **REP012** — a ``self.attr`` read-modify-write split across an
  ``await`` is the classic cooperative-concurrency race: the value was
  computed from state another coroutine may have changed during the
  suspension, and the store silently clobbers the interleaved update.
* **REP013** — a coroutine called but never awaited silently does
  nothing; a ``create_task`` whose handle is dropped loses its exception
  to the void (asyncio only reports it at GC time, if ever).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.statan.findings import Finding
from repro.statan.rules import FileContext, ProjectRule, Rule
from repro.statan.project import ProjectIndex

__all__ = ["BlockingInAsync", "AwaitStraddledMutation",
           "UnawaitedCoroutine"]


class BlockingInAsync(ProjectRule):
    """REP011: no blocking call reachable from an ``async def``."""

    rule_id = "REP011"
    name = "blocking-in-async"
    rationale = (
        "A blocking call on the event loop suspends every coroutine "
        "sharing it: one checkpoint write to a slow disk freezes churn "
        "intake, queries, and the watchdog for the full syscall. The "
        "rule follows the project call graph from each `async def` to "
        "`open`/`os.fdopen`/`time.sleep`/subprocess, so indirection "
        "through retry wrappers or stores does not hide the stall. "
        "Offload via `await asyncio.to_thread(...)` (recognized and "
        "exempt) or restructure the I/O out of the loop."
    )
    scopes = ()  # whole-program; anchored at the blocking site

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for mod, fn in sorted(
            index.async_functions(),
            key=lambda pair: (pair[0].relpath, pair[1].lineno),
        ):
            reachable = index.blocking_reachable(mod.module, fn.qualname)
            for site_id in sorted(reachable):
                site, owner_module, chain = reachable[site_id]
                owner = index.modules[owner_module]
                if chain:
                    route = " -> ".join(chain)
                    via = f" via {route}"
                else:
                    via = ""
                yield self.project_finding(
                    path=owner.path, relpath=owner.relpath,
                    line=site.lineno, col=site.col,
                    message=(
                        f"blocking call `{site.symbol}` is reachable from "
                        f"`async def {fn.qualname}` "
                        f"({mod.relpath}:{fn.lineno}){via}; it stalls the "
                        "event loop — offload with `await "
                        "asyncio.to_thread(...)`"
                    ),
                    symbol=site.symbol,
                    origin=f"{mod.module}:{fn.qualname}",
                    chain=list(chain),
                )


def _self_attr(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _attr_loads(expr: ast.AST) -> Dict[str, int]:
    """``self.X`` loads in an expression → {attr: first lineno}."""
    loads: Dict[str, int] = {}
    for node in ast.walk(expr):
        attr = _self_attr(node)
        if attr is not None and isinstance(node.ctx, ast.Load):
            loads.setdefault(attr, node.lineno)
    return loads


def _name_loads(expr: ast.AST) -> Set[str]:
    return {
        node.id for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


def _count_awaits(stmt: ast.AST) -> int:
    return sum(1 for node in ast.walk(stmt) if isinstance(node, ast.Await))


class _RaceScanner:
    """Linear walk of one async body flagging await-straddled RMWs.

    Taint model: a local assigned from ``self.X`` remembers ``X`` and the
    await-epoch of the read.  A store to ``self.X`` whose value uses a
    local tainted at an *earlier* epoch (an await happened in between),
    or whose value itself awaits after reading ``self.X``, is flagged.
    Loop bodies run twice so a read-at-bottom / write-at-top pair that
    straddles the loop's own await is caught on the second pass.
    """

    def __init__(self, rule: "AwaitStraddledMutation",
                 ctx: FileContext, fn: ast.AsyncFunctionDef) -> None:
        self.rule = rule
        self.ctx = ctx
        self.fn = fn
        self.epoch = 0
        #: local name → {attr: (epoch, lineno of the read)}
        self.taint: Dict[str, Dict[str, Tuple[int, int]]] = {}
        self.findings: List[Finding] = []
        self._flagged: Set[Tuple[str, int]] = set()

    def scan(self) -> List[Finding]:
        self._run(self.fn.body)
        return self.findings

    # -- statement walk ----------------------------------------------------------

    def _run(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs own their own race analysis
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign([stmt.target], stmt.value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt)
        elif isinstance(stmt, (ast.If,)):
            self.epoch += _count_awaits(stmt.test)
            self._run(stmt.body)
            self._run(stmt.orelse)
        elif isinstance(stmt, (ast.While,)):
            self.epoch += _count_awaits(stmt.test)
            self._run(stmt.body)
            self.epoch += _count_awaits(stmt.test)
            self._run(stmt.body)  # second pass catches wrap-around RMWs
            self._run(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.epoch += _count_awaits(stmt.iter)
            if isinstance(stmt, ast.AsyncFor):
                self.epoch += 1  # each iteration suspends at the iterator
            self._run(stmt.body)
            self._run(stmt.body)
            self._run(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self._run(stmt.body)
            for handler in stmt.handlers:
                self._run(handler.body)
            self._run(stmt.orelse)
            self._run(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.epoch += _count_awaits(item.context_expr)
            if isinstance(stmt, ast.AsyncWith):
                self.epoch += 1
            self._run(stmt.body)
        else:
            self.epoch += _count_awaits(stmt)

    # -- assignments -------------------------------------------------------------

    def _assign(self, targets: List[ast.expr], value: ast.expr,
                stmt: ast.stmt) -> None:
        epoch_before = self.epoch
        value_awaits = _count_awaits(value)
        loads = _attr_loads(value)
        names = _name_loads(value)
        for target in targets:
            for node in ast.walk(target):
                attr = _self_attr(node)
                if attr is None or not isinstance(node.ctx, ast.Store):
                    continue
                self._check_store(attr, stmt, value_awaits > 0,
                                  loads, names, epoch_before)
        self.epoch += value_awaits
        # Taint propagation to plain local targets.
        new_taint: Dict[str, Tuple[int, int]] = {}
        for attr, lineno in loads.items():
            new_taint[attr] = (epoch_before, lineno)
        for name in names:
            for attr, (epoch, lineno) in self.taint.get(name, {}).items():
                if attr not in new_taint or epoch < new_taint[attr][0]:
                    new_taint[attr] = (epoch, lineno)
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name) and \
                        isinstance(node.ctx, ast.Store):
                    self.taint[node.id] = dict(new_taint)

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        epoch_before = self.epoch
        value_awaits = _count_awaits(stmt.value)
        attr = _self_attr(stmt.target)
        if attr is not None:
            # `self.x += await f()` loads self.x, suspends, then stores.
            loads = dict(_attr_loads(stmt.value))
            loads.setdefault(attr, stmt.lineno)
            self._check_store(attr, stmt, value_awaits > 0, loads,
                              _name_loads(stmt.value), epoch_before)
        self.epoch += value_awaits

    def _check_store(self, attr: str, stmt: ast.stmt, value_awaits: bool,
                     loads: Dict[str, int], names: Set[str],
                     epoch_before: int) -> None:
        read_line: Optional[int] = None
        if value_awaits and attr in loads:
            read_line = loads[attr]
        else:
            for name in names:
                tainted = self.taint.get(name, {})
                if attr in tainted and tainted[attr][0] < epoch_before:
                    read_line = tainted[attr][1]
                    break
        if read_line is None:
            return
        key = (attr, stmt.lineno)
        if key in self._flagged:
            return
        self._flagged.add(key)
        self.findings.append(self.rule.finding(
            self.ctx, stmt,
            f"read-modify-write of `self.{attr}` straddles an await: the "
            f"stored value derives from a read at line {read_line}, and "
            "another coroutine may have mutated the attribute during the "
            "suspension — recompute after the await or guard with a lock",
            attr=attr, read_line=read_line,
        ))


class AwaitStraddledMutation(Rule):
    """REP012: no ``self.attr`` RMW split across an ``await``."""

    rule_id = "REP012"
    name = "await-straddled-mutation"
    rationale = (
        "Cooperative concurrency means every `await` is a preemption "
        "point. Reading `self.attr`, suspending, then storing a value "
        "computed from the stale read silently clobbers whatever a "
        "churn producer or query wrote in between — the exact "
        "interleaving race the always-on service loop must not have. "
        "Recompute from fresh state after the await, or make the "
        "read-modify-write atomic between suspension points."
    )
    scopes = ()  # everywhere: async bodies are rare and all load-bearing

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from _RaceScanner(self, ctx, node).scan()


_TASK_SPAWNERS = ("create_task", "ensure_future")


class UnawaitedCoroutine(Rule):
    """REP013: coroutines are awaited; task handles are retained."""

    rule_id = "REP013"
    name = "unawaited-coroutine"
    rationale = (
        "A coroutine called without `await` is never scheduled: the "
        "call silently does nothing and returns an object that warns "
        "only at GC time. A `create_task` whose handle is dropped is "
        "fire-and-forget: its exception is lost to the void and "
        "cancellation can reap it mid-write. Await the coroutine, or "
        "retain the task handle somewhere that observes its result."
    )
    scopes = ()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        async_module_fns = {
            node.name for node in ctx.tree.body
            if isinstance(node, ast.AsyncFunctionDef)
        }
        async_methods: Dict[str, Set[str]] = {}
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                async_methods[node.name] = {
                    item.name for item in node.body
                    if isinstance(item, ast.AsyncFunctionDef)
                }
        for cls_name, fn in self._functions(ctx.tree):
            for stmt in ast.walk(fn):
                if not isinstance(stmt, ast.Expr) or \
                        not isinstance(stmt.value, ast.Call):
                    continue
                call = stmt.value
                spawner = self._spawner_name(call.func)
                if spawner is not None:
                    yield self.finding(
                        ctx, stmt,
                        f"`{spawner}` result is dropped: the task is "
                        "fire-and-forget — retain the handle and consume "
                        "its exception (or await it)",
                        spawner=spawner,
                    )
                    continue
                target = self._async_callee(
                    call.func, cls_name, async_module_fns, async_methods)
                if target is not None:
                    yield self.finding(
                        ctx, stmt,
                        f"coroutine `{target}` is called but never "
                        "awaited; the call does nothing",
                        coroutine=target,
                    )

    @staticmethod
    def _functions(tree: ast.Module) -> Iterator[
            Tuple[Optional[str], ast.AST]]:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield None, node
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        yield node.name, item

    @staticmethod
    def _spawner_name(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Attribute) and func.attr in _TASK_SPAWNERS:
            return func.attr
        if isinstance(func, ast.Name) and func.id in _TASK_SPAWNERS:
            return func.id
        return None

    @staticmethod
    def _async_callee(func: ast.expr, cls_name: Optional[str],
                      module_fns: Set[str],
                      methods: Dict[str, Set[str]]) -> Optional[str]:
        if isinstance(func, ast.Name) and func.id in module_fns:
            return func.id
        if cls_name is not None and isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id == "self" and \
                func.attr in methods.get(cls_name, set()):
            return f"self.{func.attr}"
        return None
