"""REP014–REP015 — cross-module telemetry and config contracts.

The telemetry registry and tracer are get-or-create by *name*: a typo'd
metric read (``service.supervisor_restart_total`` for
``…restarts_total``) or a consumer filtering a trace kind nobody emits
does not fail — it silently reads nothing, and the dashboard goes dark
without a symptom.  REP014 resolves every literal metric read
(``registry.get("…")``) and trace-kind read (``sink.of_kind("…")``)
against the project-wide emit index, and rejects the same metric name
registered under two different instrument kinds.

REP015 closes the gap REP008 left: a ``*Config`` dataclass may dutifully
define ``__post_init__`` yet never look at half its knobs.  Every
``int``/``float``/``str`` field (the scalar knobs; nested configs
validate themselves and ``Optional`` fields are legitimately
pass-through) must be referenced by the validator.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.statan.findings import Finding
from repro.statan.rules import ProjectRule
from repro.statan.project import ConfigInfo, ModuleIndex, ProjectIndex

__all__ = ["UnresolvedTelemetryName", "ConfigFieldUnchecked"]

#: Scalar field annotations REP015 demands validation for.
_SCALAR_ANNOTATIONS = frozenset({"int", "float", "str"})


class UnresolvedTelemetryName(ProjectRule):
    """REP014: metric/trace-event reads resolve against real emits."""

    rule_id = "REP014"
    name = "unresolved-telemetry-name"
    rationale = (
        "The registry is get-or-create by name and trace sinks filter "
        "by kind, so a typo'd read is not an error at runtime — it is a "
        "dashboard that silently reads zero forever. Every literal "
        "`registry.get(...)` must name a metric some module registers, "
        "every `of_kind(...)` must name a kind some module emits, and "
        "one metric name must not be registered under two instrument "
        "kinds (the second registration raises only when both paths "
        "run in one process)."
    )
    scopes = ()

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        metric_defs = index.metric_names()
        event_kinds = index.event_kinds()
        # Kind conflicts: one name, two instrument kinds.
        for name in sorted(metric_defs):
            sites = metric_defs[name]
            kinds = {definition.kind for _, definition in sites}
            if len(kinds) > 1:
                ordered = sorted(sites, key=lambda s: (s[0],
                                                       s[1].lineno))
                first_mod, first_def = ordered[0]
                for mod_name, definition in ordered[1:]:
                    if definition.kind == first_def.kind:
                        continue
                    mod = index.modules[mod_name]
                    yield self.project_finding(
                        path=mod.path, relpath=mod.relpath,
                        line=definition.lineno, col=0,
                        message=(
                            f"metric `{name}` is registered as a "
                            f"{definition.kind} here but as a "
                            f"{first_def.kind} in "
                            f"{index.modules[first_mod].relpath}:"
                            f"{first_def.lineno}; the registry raises on "
                            "the second get-or-create at runtime"
                        ),
                        metric=name, kind=definition.kind,
                        conflicting_kind=first_def.kind,
                    )
        for mod in sorted(index.modules.values(),
                          key=lambda m: m.relpath):
            for read in mod.metric_reads:
                if read.name in metric_defs:
                    continue
                hint = _closest(read.name, metric_defs)
                yield self.project_finding(
                    path=mod.path, relpath=mod.relpath,
                    line=read.lineno, col=read.col,
                    message=(
                        f"metric `{read.name}` is read but never "
                        f"registered anywhere in the project{hint}; the "
                        "read silently returns nothing"
                    ),
                    metric=read.name,
                )
            for read in mod.event_reads:
                if read.kind in event_kinds:
                    continue
                hint = _closest(read.kind, event_kinds)
                yield self.project_finding(
                    path=mod.path, relpath=mod.relpath,
                    line=read.lineno, col=read.col,
                    message=(
                        f"trace-event kind `{read.kind}` is consumed but "
                        f"never emitted anywhere in the project{hint}; "
                        "the filter matches nothing"
                    ),
                    kind=read.kind,
                )


def _closest(name: str, known: Iterable[str]) -> str:
    """A `; did you mean ...` hint when a near-miss exists."""
    best: Tuple[float, str] = (0.0, "")
    for candidate in known:
        score = _similarity(name, candidate)
        if score > best[0]:
            best = (score, candidate)
    if best[0] >= 0.75:
        return f"; did you mean `{best[1]}`?"
    return ""


def _similarity(a: str, b: str) -> float:
    """Cheap token-free similarity: longest common subsequence ratio."""
    if not a or not b:
        return 0.0
    prev = [0] * (len(b) + 1)
    for ch_a in a:
        row = [0]
        for j, ch_b in enumerate(b):
            row.append(prev[j] + 1 if ch_a == ch_b
                       else max(prev[j + 1], row[-1]))
        prev = row
    return 2.0 * prev[-1] / (len(a) + len(b))


class ConfigFieldUnchecked(ProjectRule):
    """REP015: scalar ``*Config`` fields are referenced by the validator."""

    rule_id = "REP015"
    name = "config-field-unchecked"
    rationale = (
        "REP008 makes every public config dataclass define "
        "`__post_init__`; this rule makes the validator actually look "
        "at each scalar knob. An int/float/str field the validator "
        "never references is a knob whose bad value (negative seed, "
        "unknown backend string) sails through construction and "
        "surfaces hundreds of iterations later as an anomaly that "
        "looks like an algorithm bug. Optional fields and nested "
        "configs are exempt: pass-through by design, self-validating "
        "respectively."
    )
    scopes = (
        "repro/core/", "repro/model/", "repro/service/",
        "repro/distributed/", "repro/sim/",
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for mod in sorted(index.modules.values(),
                          key=lambda m: m.relpath):
            if not self.applies_to(mod.relpath):
                continue
            for config in mod.configs:
                yield from self._check_config(mod, config)

    def _check_config(self, mod: ModuleIndex,
                      config: ConfigInfo) -> Iterator[Finding]:
        if not config.has_post_init:
            return  # REP008's finding; no second report here
        refs = set(config.post_init_refs)
        for field in config.fields:
            if field.optional:
                continue
            if field.annotation not in _SCALAR_ANNOTATIONS:
                continue
            if field.name in refs:
                continue
            yield self.project_finding(
                path=mod.path, relpath=mod.relpath,
                line=field.lineno, col=0,
                message=(
                    f"field `{field.name}` of `{config.cls}` is never "
                    "referenced in `__post_init__`; the knob is "
                    "accepted unvalidated — check it or mark the field "
                    "Optional if it is pass-through"
                ),
                cls=config.cls, field=field.name,
            )
