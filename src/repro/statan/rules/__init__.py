"""Rule framework and catalog.

A rule is an :class:`ast` inspection scoped to part of the tree: it
receives one parsed :class:`FileContext` and yields
:class:`~repro.statan.findings.Finding` records.  Rules are stateless
across files; anything remembered between ``check`` calls is a bug.

Scoping: each rule declares ``scopes`` — package-rooted posix prefixes
(``repro/core/``).  An empty tuple means the rule applies everywhere the
engine is pointed at.  ``tests/`` and fixture files are simply never
handed to the engine by the CI gate, so rules don't special-case them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import StaticAnalysisError
from repro.statan.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.statan.project import ProjectIndex

__all__ = [
    "FileContext",
    "Rule",
    "ProjectRule",
    "ALL_RULES",
    "get_rules",
    "rule_ids",
    "StaticAnalysisError",
]


@dataclass
class FileContext:
    """Everything a rule may look at for one file."""

    path: str
    relpath: str
    source: str
    tree: ast.Module

    #: Module-alias maps harvested once per file by the engine:
    #: ``import numpy as np`` → ``{"np": "numpy"}``;
    #: ``from time import time as now`` → ``{"now": "time.time"}``.
    module_aliases: Optional[Dict[str, str]] = None
    imported_names: Optional[Dict[str, str]] = None

    def __post_init__(self) -> None:
        if self.module_aliases is None or self.imported_names is None:
            self.module_aliases = {}
            self.imported_names = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        self.module_aliases[alias.asname or alias.name] = alias.name
                elif isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        self.imported_names[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Resolve ``np.random.normal`` → ``numpy.random.normal`` using the
        file's imports; ``None`` when the expression isn't a plain dotted
        name rooted at an import."""
        parts: List[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        root = cursor.id
        if root in self.module_aliases:
            parts.append(self.module_aliases[root])
        elif root in self.imported_names:
            parts.append(self.imported_names[root])
        else:
            parts.append(root)
        return ".".join(reversed(parts))


class Rule:
    """Base class: subclasses set the class attributes and implement
    :meth:`check`."""

    #: Stable identifier (``REP001``); suppression comments use it.
    rule_id: str = ""
    #: Short human name (``unseeded-randomness``).
    name: str = ""
    #: One-paragraph rationale tied to the repo invariant it protects.
    rationale: str = ""
    #: Package-rooted path prefixes the rule applies to; empty = all.
    scopes: Tuple[str, ...] = ()
    severity: Severity = Severity.ERROR
    #: Whether the rule runs in pass 2 over the whole-program index.
    is_project_rule: bool = False

    def applies_to(self, relpath: str) -> bool:
        if not self.scopes:
            return True
        return any(relpath.startswith(scope) for scope in self.scopes)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                **data: object) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            message=message,
            path=ctx.path,
            relpath=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=self.severity,
            data=dict(data),
        )


class ProjectRule(Rule):
    """A pass-2 rule: runs once over the assembled
    :class:`~repro.statan.project.ProjectIndex`, not per file.

    ``check`` is a pass-1 no-op; subclasses implement
    :meth:`check_project`.  Findings anchor wherever the evidence lives
    (the blocking call site, the unresolved read), so inline
    suppressions on that line apply exactly as they do for pass-1
    findings.
    """

    is_project_rule = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(self, *, path: str, relpath: str, line: int,
                        col: int, message: str,
                        **data: object) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            message=message,
            path=path,
            relpath=relpath,
            line=line,
            col=col,
            severity=self.severity,
            data=dict(data),
        )


def _build_catalog() -> "List[Rule]":
    from repro.statan.rules.determinism import UnseededRandomness, WallClock
    from repro.statan.rules.exceptions import SwallowedException
    from repro.statan.rules.distributed import CrossAgentAccess
    from repro.statan.rules.numerics import FloatEquality, MutableDefault
    from repro.statan.rules.telemetry import AdHocTelemetry
    from repro.statan.rules.configs import ConfigValidation
    from repro.statan.rules.experiments import UnregisteredExperiment
    from repro.statan.rules.spans import SpanMisuse
    from repro.statan.rules.asyncsafety import (
        AwaitStraddledMutation,
        BlockingInAsync,
        UnawaitedCoroutine,
    )
    from repro.statan.rules.contracts import (
        ConfigFieldUnchecked,
        UnresolvedTelemetryName,
    )
    from repro.statan.rules.structure import StructureBypass

    return [
        UnseededRandomness(),
        WallClock(),
        SwallowedException(),
        CrossAgentAccess(),
        FloatEquality(),
        MutableDefault(),
        AdHocTelemetry(),
        ConfigValidation(),
        UnregisteredExperiment(),
        SpanMisuse(),
        BlockingInAsync(),
        AwaitStraddledMutation(),
        UnawaitedCoroutine(),
        UnresolvedTelemetryName(),
        ConfigFieldUnchecked(),
        StructureBypass(),
    ]


#: The shipped catalog, ordered by rule id.
ALL_RULES: List[Rule] = sorted(_build_catalog(), key=lambda r: r.rule_id)


def rule_ids() -> List[str]:
    return [rule.rule_id for rule in ALL_RULES]


def get_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """The catalog, optionally narrowed to ``select`` ids (order kept)."""
    if select is None:
        return list(ALL_RULES)
    wanted: Sequence[str] = [s.strip().upper() for s in select if s.strip()]
    known = {rule.rule_id: rule for rule in ALL_RULES}
    unknown = [s for s in wanted if s not in known]
    if unknown:
        raise StaticAnalysisError(
            f"unknown rule id(s) {unknown!r}; known: {sorted(known)}"
        )
    return [known[s] for s in dict.fromkeys(wanted)]
