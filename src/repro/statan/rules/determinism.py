"""REP001/REP002 — determinism rules.

The repo's headline guarantees (bitwise scalar/vectorized parity,
seed-reproducible chaos runs, trace replay == live equality) all reduce
to two source-level invariants: every random draw flows from an injected
seeded generator, and no deterministic path reads the wall clock.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.statan.findings import Finding
from repro.statan.rules import FileContext, Rule

__all__ = ["UnseededRandomness", "WallClock"]

#: ``numpy.random`` members that *construct* seeded state rather than
#: draw from the hidden global generator — these are the sanctioned way
#: to get randomness.
_SEEDED_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "PCG64DXSM",
    "MT19937", "Philox", "SFC64", "BitGenerator",
})

#: Wall-clock reads that poison replayability.  ``time.perf_counter`` /
#: ``time.monotonic`` stay legal: they feed *duration* metrics
#: (profiling), never event timestamps or control decisions.
_WALL_CLOCK = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})


class UnseededRandomness(Rule):
    """REP001: randomness must come from an injected, seeded generator."""

    rule_id = "REP001"
    name = "unseeded-randomness"
    rationale = (
        "Draws from the process-global `random` module or the legacy "
        "`numpy.random.*` functions bypass the injected "
        "`numpy.random.Generator` seeds, so two runs with the same seed "
        "diverge — breaking seed-reproducible experiments and the "
        "scalar/vectorized parity gate."
    )
    scopes = ("repro/core/", "repro/sim/", "repro/distributed/",
              "repro/workloads/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified_name(node.func)
            if qual is None:
                continue
            if qual.startswith("random."):
                yield self.finding(
                    ctx, node,
                    f"call to `{qual}` draws from the global stdlib RNG; "
                    "inject a seeded `numpy.random.Generator` instead",
                    symbol=qual,
                )
            elif qual.startswith("numpy.random."):
                member = qual.split(".", 2)[2].split(".", 1)[0]
                if member not in _SEEDED_CONSTRUCTORS:
                    yield self.finding(
                        ctx, node,
                        f"call to `{qual}` uses numpy's hidden global RNG; "
                        "draw from an injected `numpy.random.Generator` "
                        "(`default_rng(seed)`) instead",
                        symbol=qual,
                    )


class WallClock(Rule):
    """REP002: deterministic paths must not read the wall clock."""

    rule_id = "REP002"
    name = "wall-clock-read"
    rationale = (
        "Wall-clock reads make trace replay diverge from the live run and "
        "leak host timing into simulated timelines; deterministic code "
        "must take the sim clock or an injected clock callable. "
        "`time.perf_counter`/`time.monotonic` remain legal for duration "
        "profiling."
    )
    scopes = ("repro/core/", "repro/sim/", "repro/distributed/",
              "repro/workloads/", "repro/telemetry/")

    def _is_wall_clock(self, ctx: FileContext, node: ast.AST) -> Tuple[bool, str]:
        qual = ctx.qualified_name(node)
        if qual is None:
            return False, ""
        return qual in _WALL_CLOCK, qual

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Flag *references*, not just calls: stashing `time.time` as a
        # default clock is the same leak one indirection later.
        flagged_calls = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                hit, qual = self._is_wall_clock(ctx, node.func)
                if hit:
                    flagged_calls.add(id(node.func))
                    yield self.finding(
                        ctx, node,
                        f"wall-clock call `{qual}()` in a deterministic "
                        "path; use the sim clock or an injected clock",
                        symbol=qual,
                    )
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Attribute, ast.Name)) and \
                    id(node) not in flagged_calls:
                hit, qual = self._is_wall_clock(ctx, node)
                if hit:
                    yield self.finding(
                        ctx, node,
                        f"reference to wall clock `{qual}`; pass an "
                        "injectable clock callable instead",
                        symbol=qual,
                    )
