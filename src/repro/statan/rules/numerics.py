"""REP005/REP006 — numeric-kernel hygiene rules."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statan.findings import Finding
from repro.statan.rules import FileContext, Rule

__all__ = ["FloatEquality", "MutableDefault"]

_ARITH = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Pow,
          ast.Mod)


def _contains_float_literal(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Constant) and isinstance(sub.value, float)
        for sub in ast.walk(node)
    )


def _is_computed(node: ast.AST) -> bool:
    """An expression whose float value went through arithmetic or a call —
    i.e. one subject to rounding, not an exact stored sentinel."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_computed(node.operand)
    return isinstance(node, ast.Call)


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp):
        return _is_float_literal(node.operand)
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


class FloatEquality(Rule):
    """REP005: no ``==``/``!=`` between computed floats in numeric kernels."""

    rule_id = "REP005"
    name = "float-equality"
    rationale = (
        "Exact equality on a value that went through arithmetic compares "
        "rounding noise, so the branch flips between backends and "
        "platforms — the exact failure mode the scalar/vectorized parity "
        "gate exists to catch. Comparing a *stored* value against a "
        "sentinel literal (`err != 0.0` where `err` is assigned, never "
        "accumulated) stays legal; use `math.isclose`/tolerances for "
        "computed quantities."
    )
    scopes = ("repro/core/", "repro/model/", "repro/sim/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (left, right)
                computed = [o for o in pair if _is_computed(o)]
                if not computed:
                    continue
                floaty = (
                    any(_is_float_literal(o) for o in pair)
                    or any(_contains_float_literal(o) for o in computed)
                )
                if floaty:
                    yield self.finding(
                        ctx, node,
                        "exact float comparison against a computed value; "
                        "use a tolerance (`math.isclose`, `abs(a-b) <= "
                        "tol`) — exact equality flips with rounding",
                    )


class MutableDefault(Rule):
    """REP006: no mutable default arguments."""

    rule_id = "REP006"
    name = "mutable-default-argument"
    rationale = (
        "A mutable default is created once at import and shared by every "
        "call, so state leaks across runs of what should be independent, "
        "reproducible experiments. Default to `None` and allocate inside "
        "the function."
    )
    scopes = ()  # everywhere

    _MUTABLE_CALLS = frozenset({
        "list", "dict", "set", "bytearray", "deque", "defaultdict",
        "OrderedDict", "Counter",
    })

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in `{node.name}`; use "
                        "`None` and allocate per call",
                        function=node.name,
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            return name in self._MUTABLE_CALLS
        return False
