"""REP016 — compile once, share everywhere.

PR 10 made :class:`~repro.core.structure.TaskSetStructure` the canonical
compiled form of a task set: every per-iteration observer (loads, path
latencies, utilities, feasibility) has an array-based equivalent in
:mod:`repro.core.vectorized` that reads the structure.  Walking the
``TaskSet``/``Task`` object graph for the same facts is O(objects) per
call, duplicates the share/utility formulas, and silently diverges from
the compiled model the optimizer actually runs (e.g. after an error
correction refreshes the structure's arrays).

This rule flags calls to the traversal APIs inside the hot-path
packages (core, distributed, sim, service).  Legacy scalar-backend
call sites — the reference implementation the vectorized engine is
tested against — carry inline suppressions explaining why they must
keep traversing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statan.findings import Finding
from repro.statan.rules import FileContext, Rule

__all__ = ["StructureBypass"]

#: TaskSet/Task/TaskGraph methods that re-derive, per call, facts the
#: compiled structure already holds as arrays.
_TRAVERSAL_APIS = frozenset({
    "resource_loads",      # TaskSet → dict of per-resource loads, O(S)
    "resource_load",       # TaskSet → one resource's load, O(S)
    "total_utility",       # TaskSet → summed utilities, O(S)
    "is_feasible",         # TaskSet → feasibility, O(S + P)
    "constraint_violations",  # TaskSet → violation list, O(S + P)
    "subtasks_on",         # TaskSet → subtasks of a resource, O(S)
    "aggregated_latency",  # Task → weighted latency sum, O(S_t)
    "utility_value",       # Task → utility at a latency map, O(S_t)
    "critical_path",       # Task/TaskGraph → worst path, O(P_t)
    "path_latency",        # TaskGraph → one path's latency, O(|path|)
})


class StructureBypass(Rule):
    """REP016: hot paths read the compiled structure, not the object graph."""

    rule_id = "REP016"
    name = "object-graph-hot-path"
    rationale = (
        "The compiled TaskSetStructure is the single representation of a "
        "task set that the optimizer, shards, service and simulator share. "
        "Re-traversing the TaskSet object graph on a hot path recomputes "
        "facts the structure already holds as arrays, costs O(objects) per "
        "call, and can disagree with the compiled model after a live "
        "refresh (capacity shock, error correction). Observers in the hot "
        "packages must read the structure (repro.core.vectorized exposes "
        "compute_loads/observe_assignment); the scalar reference "
        "implementation keeps traversing under justified suppressions."
    )
    scopes = (
        "repro/core/",
        "repro/distributed/",
        "repro/sim/",
        "repro/service/",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _TRAVERSAL_APIS:
                continue
            yield self.finding(
                ctx, node,
                f"`.{func.attr}(...)` re-traverses the TaskSet object "
                "graph on a hot path; read the compiled TaskSetStructure "
                "instead (repro.core.vectorized.observe_assignment / "
                "compute_loads), or suppress with the reason this site "
                "must stay scalar",
                api=func.attr,
            )
