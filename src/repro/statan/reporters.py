"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

SARIF is the interchange format GitHub code scanning and most IDE
annotators ingest; emitting it from a bespoke linter costs ~50 lines and
makes the gate's output first-class everywhere standard tooling looks.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.errors import StaticAnalysisError
from repro.statan.baseline import FINGERPRINT_KEY
from repro.statan.engine import LintResult
from repro.statan.rules import ALL_RULES

__all__ = ["render_text", "render_json", "render_sarif", "render",
           "FORMATS"]

FORMATS = ("text", "json", "sarif")

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult, files: Sequence[str]) -> str:
    lines: List[str] = [finding.render() for finding in result.findings]
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} "
        f"file(s); {len(result.suppressed)} suppressed"
    )
    if result.baselined:
        summary += f"; {len(result.baselined)} baselined"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult, files: Sequence[str]) -> str:
    payload: Dict[str, Any] = {
        "tool": "repro.statan",
        "files_checked": result.files_checked,
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "baselined": [finding.to_dict() for finding in result.baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_DOCS_URI = "https://example.invalid/docs/STATIC_ANALYSIS.md"


def render_sarif(result: LintResult, files: Sequence[str]) -> str:
    rule_meta = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.rationale},
            "helpUri": f"{_DOCS_URI}#{rule.rule_id.lower()}",
            "defaultConfiguration": {"level": "error"},
        }
        for rule in ALL_RULES
    ]
    results = []
    for finding in result.findings:
        entry: Dict[str, Any] = {
            "ruleId": finding.rule_id,
            "level": str(finding.severity),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.relpath},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        fingerprint = finding.data.get(FINGERPRINT_KEY)
        if isinstance(fingerprint, str):
            # Stable across line shifts: GitHub code scanning uses this
            # to dedup alerts between runs.
            entry["partialFingerprints"] = {
                "primaryLocationLineHash": fingerprint,
            }
        results.append(entry)
    sarif = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.statan",
                    "informationUri": _DOCS_URI,
                    "rules": rule_meta,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(sarif, indent=2, sort_keys=True)


def render(result: LintResult, files: Sequence[str], fmt: str) -> str:
    if fmt == "text":
        return render_text(result, files)
    if fmt == "json":
        return render_json(result, files)
    if fmt == "sarif":
        return render_sarif(result, files)
    raise StaticAnalysisError(
        f"unknown report format {fmt!r}; expected one of {FORMATS}"
    )
