"""``repro lint`` — the command-line face of the statan gate.

Exit codes: 0 clean, 1 findings, 2 usage error.  Suppression growth is
visible in diffs by construction: every waiver must carry an inline
justification, so there is no side-channel allowlist to audit.  Baseline
growth is likewise diff-visible: adding entries requires an explicit
``--write-baseline`` commit.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.errors import StaticAnalysisError
from repro.statan.baseline import load_baseline, write_baseline
from repro.statan.engine import PARSE_ERROR, lint_paths
from repro.statan.reporters import FORMATS, render
from repro.statan.rules import ALL_RULES

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", dest="fmt",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "-o", "--output",
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="known-findings file; matched findings don't gate",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings into --baseline and exit clean "
             "(STA000 parse errors are never baselined and fail the run)",
    )
    parser.add_argument(
        "--cache", metavar="FILE", dest="cache_path",
        help="incremental analysis cache file (content-hash keyed)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print pass timings and cache hit rates",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also print suppressed findings (text format)",
    )


def _list_rules() -> str:
    lines: List[str] = []
    for rule in ALL_RULES:
        scopes = ", ".join(rule.scopes) if rule.scopes else "all linted paths"
        kind = "project" if rule.is_project_rule else "file"
        lines.append(f"{rule.rule_id}  {rule.name}  [{kind}]")
        lines.append(f"    scope: {scopes}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(_list_rules())
        return 0
    select = args.select.split(",") if args.select else None
    if args.write_baseline and not args.baseline:
        print("repro lint: --write-baseline requires --baseline FILE")
        return 2
    try:
        baseline = None
        if args.baseline and not args.write_baseline:
            baseline = load_baseline(args.baseline)
        result, files = lint_paths(
            args.paths, select=select, baseline=baseline,
            cache_path=args.cache_path,
        )
        if args.write_baseline:
            # A parse error is not a "known finding" to adopt: baselining
            # STA000 would permanently exempt a syntax-broken file from
            # every future gate.  Record everything else, keep the parse
            # errors visible, and fail so they cannot ride along.
            parse_errors = [f for f in result.findings
                            if f.rule_id == PARSE_ERROR]
            recordable = [f for f in result.findings
                          if f.rule_id != PARSE_ERROR]
            count = write_baseline(args.baseline, recordable)
            print(f"baseline written to {args.baseline} "
                  f"({count} finding(s) recorded)")
            if parse_errors:
                print(f"repro lint: {len(parse_errors)} {PARSE_ERROR} "
                      "parse-error finding(s) NOT baselined — fix the "
                      "syntax errors instead:")
                for finding in parse_errors:
                    print(f"  {finding.render()}")
            if args.stats:
                print(result.stats.render())
            return 1 if parse_errors else 0
    except StaticAnalysisError as exc:
        print(f"repro lint: {exc}")
        return 2
    report = render(result, files, args.fmt)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"lint report written to {args.output}")
        if args.fmt == "text" and result.findings:
            # Keep failures visible in CI logs even when redirected.
            for finding in result.findings:
                print(finding.render())
    else:
        print(report)
    if args.show_suppressed and args.fmt == "text" and result.suppressed:
        print("suppressed:")
        for finding in result.suppressed:
            print(f"  {finding.render()}")
    if args.stats:
        print(result.stats.render())
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="statan — AST invariant linter for the LLA stack",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
