"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiment`` — run registered paper experiments against their claim
  checks: ``--list`` shows the registry, ``NAME`` runs one spec (with
  uniform ``--backend/--seed/--iterations/--set key=value`` overrides and
  ``-o`` writing the RunResult artifact), ``--all`` runs every spec and
  prints the reproduction scorecard (non-zero exit on any failed claim);
* ``optimize <workload.json>`` — load a serialized workload, run LLA, and
  print the converged allocation (optionally write it as JSON); with
  ``--trace FILE`` the run also writes a JSONL telemetry trace;
* ``check <workload.json>`` — run the schedulability test on a workload;
* ``export-workload {base,scaled,unschedulable,prototype} [-o FILE]`` —
  serialize one of the paper's workloads for editing;
* ``trace <run.jsonl>`` — replay a JSONL telemetry trace into the
  convergence diagnostics of :mod:`repro.analysis.trace`;
* ``stats <run.jsonl>`` — event counts and the final metrics snapshot of
  a JSONL telemetry trace (``--prometheus`` renders the snapshot in the
  Prometheus text exposition format);
* ``diagnose <run.jsonl>`` — run the convergence health detectors
  (oscillation, stall, feasibility churn, escalation audit, margins)
  over a recorded trace and print structured findings; with spans in
  the trace, also prints the causal critical path; non-zero exit on
  critical findings;
* ``top <workload.json>`` — drive a live distributed run and render a
  terminal dashboard (prices, loads, bus health, diagnostics);
* ``bench-diff <baseline.json> <current.json>`` — compare two benchmark
  artifacts (BENCH reports or harness scorecards) and flag regressions
  beyond a threshold; non-zero exit on regression;
* ``chaos`` — run a scripted fault scenario (crash/restart, blackout)
  against its fault-free twin and report dip depth, recovery time and
  degraded-round safety; ``-o`` writes the report as a JSON artifact;
* ``lint [paths…]`` — run the :mod:`repro.statan` invariant linter
  (determinism, agent-locality, telemetry and config rules) over the
  given files/directories; text/JSON/SARIF reports, non-zero exit on
  findings (the CI gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TYPE_CHECKING, Any, Coroutine, List, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.model.task import TaskSet

from repro.analysis.schedulability import SchedulabilityAnalyzer
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.errors import TelemetryError
from repro.model.serialize import taskset_from_json, taskset_to_json
from repro.statan.cli import add_lint_arguments, run_lint
from repro.telemetry import Telemetry, event_counts, read_trace
from repro.workloads.paper import (
    make_workload,
    scaled_workload,
    workload_names,
)

__all__ = ["main", "build_parser"]

_CHAOS_SCENARIOS = ("crash-restart", "crash-cold", "blackout", "all")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LLA — Lagrangian Latency Assignment (ICDCS 2008 "
                    "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser(
        "experiment",
        help="run registered paper experiments against their claim checks",
    )
    exp.add_argument("name", nargs="?",
                     help="registered experiment (see --list)")
    exp.add_argument("--list", action="store_true", dest="list_specs",
                     help="list the experiment registry and exit")
    exp.add_argument("--all", action="store_true", dest="all_specs",
                     help="run every registered experiment and print the "
                          "reproduction scorecard")
    exp.add_argument("--quick", action="store_true",
                     help="reduced budgets; full-budget-only claims are "
                          "recorded as skipped")
    exp.add_argument("--seed", type=int, default=None,
                     help="seed recorded in the artifact and forwarded "
                          "when the experiment takes one")
    exp.add_argument("--backend", choices=("scalar", "vectorized"),
                     default=None,
                     help="LLA iteration kernel (experiments with a "
                          "'backend' parameter only)")
    exp.add_argument("--iterations", type=int, default=None,
                     help="iteration budget override (experiments with an "
                          "iteration-budget parameter only)")
    exp.add_argument("--set", action="append", default=[],
                     metavar="KEY=VALUE", dest="overrides",
                     help="override one declared parameter (repeatable)")
    exp.add_argument("--trace",
                     help="write a JSONL telemetry trace to this file")
    exp.add_argument("-o", "--output",
                     help="write the RunResult artifact (or, with --all, "
                          "the scorecard) as JSON to this file")

    opt = sub.add_parser("optimize", help="optimize a workload JSON file")
    opt.add_argument("workload", help="path to a serialized workload")
    opt.add_argument("--iterations", type=int, default=1500)
    opt.add_argument("--warm-start", action="store_true")
    opt.add_argument("--backend", choices=("scalar", "vectorized"),
                     default="scalar",
                     help="LLA iteration kernel (identical iterates; "
                          "'vectorized' is faster on large workloads)")
    opt.add_argument("--shards", type=int, default=1,
                     help="partition the vectorized kernel by resource-"
                          "connectivity components (bitwise-identical "
                          "iterates; implies --backend vectorized)")
    opt.add_argument("--shard-mode", choices=("serial", "processes"),
                     default="serial",
                     help="run shards in-process or one worker process "
                          "per shard (default serial)")
    opt.add_argument("-o", "--output",
                     help="write the allocation as JSON to this file")
    opt.add_argument("--trace",
                     help="write a JSONL telemetry trace to this file")

    chk = sub.add_parser("check", help="schedulability-test a workload")
    chk.add_argument("workload", help="path to a serialized workload")
    chk.add_argument("--iterations", type=int, default=2000)

    exp_w = sub.add_parser("export-workload",
                           help="serialize a built-in workload")
    exp_w.add_argument("name", choices=workload_names())
    exp_w.add_argument("-o", "--output", help="output file (default stdout)")

    trc = sub.add_parser("trace",
                         help="summarize a JSONL telemetry trace")
    trc.add_argument("tracefile", help="path to a JSONL trace")
    trc.add_argument("--band", type=float, default=0.5,
                     help="settling band around the final utility")

    sts = sub.add_parser("stats",
                         help="event counts + metrics of a JSONL trace")
    sts.add_argument("tracefile", help="path to a JSONL trace")
    sts.add_argument("--prometheus", action="store_true",
                     help="render the final metrics snapshot in the "
                          "Prometheus text exposition format")

    dgn = sub.add_parser(
        "diagnose",
        help="convergence health findings from a recorded trace",
    )
    dgn.add_argument("tracefile", help="path to a JSONL trace")
    dgn.add_argument("--window", type=int, default=100,
                     help="tail window (iterations) the detectors inspect")
    dgn.add_argument("--workload",
                     help="serialized workload for exact feasibility "
                          "margins (optional)")
    dgn.add_argument("--json", action="store_true", dest="as_json",
                     help="emit findings as JSON instead of text")

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a distributed run",
    )
    top.add_argument("workload", help="path to a serialized workload")
    top.add_argument("--rounds", type=int, default=200,
                     help="protocol rounds to run")
    top.add_argument("--refresh", type=int, default=10,
                     help="rounds between frame redraws")
    top.add_argument("--plain", action="store_true",
                     help="print frames without ANSI screen clearing "
                          "(logs, tests)")
    top.add_argument("--delay", type=int, default=0,
                     help="bus delivery delay in rounds")
    top.add_argument("--loss", type=float, default=0.0,
                     help="bus message-loss probability")
    top.add_argument("--seed", type=int, default=0)

    bdf = sub.add_parser(
        "bench-diff",
        help="compare two benchmark artifacts for regressions",
    )
    bdf.add_argument("baseline", help="baseline BENCH report or scorecard")
    bdf.add_argument("current", help="current BENCH report or scorecard")
    bdf.add_argument("--threshold", type=float, default=0.25,
                     help="relative change beyond which a directional "
                          "metric counts as regressed (default 0.25)")
    bdf.add_argument("--ignore-timing", action="store_true",
                     help="never flag wall-time metrics (noisy runners)")
    bdf.add_argument("--verbose", action="store_true",
                     help="also list non-regressed deltas")
    bdf.add_argument("-o", "--output",
                     help="write the diff report as JSON to this file")

    cha = sub.add_parser(
        "chaos",
        help="run a fault-injection scenario and report recovery",
    )
    cha.add_argument("--scenario", choices=sorted(_CHAOS_SCENARIOS),
                     default="all",
                     help="which fault scenario to run (default: all)")
    cha.add_argument("--rounds", type=int, default=1200,
                     help="protocol rounds per run")
    cha.add_argument("--fault-at", type=int, default=400,
                     help="round at which the fault starts")
    cha.add_argument("--outage", type=int, default=50,
                     help="fault duration in rounds")
    cha.add_argument("--agent", default="resource:r0",
                     help="agent to crash (crash scenarios)")
    cha.add_argument("--seed", type=int, default=0)
    cha.add_argument("--staleness-limit", type=int, default=10,
                     help="rounds before a controller degrades on stale "
                          "prices")
    cha.add_argument("--quick", action="store_true",
                     help="small-budget smoke configuration "
                          "(500 rounds, fault at 150 for 30)")
    cha.add_argument("--traces", action="store_true",
                     help="include per-round utility traces in the JSON "
                          "report")
    cha.add_argument("-o", "--output",
                     help="write the chaos report as JSON to this file")

    srv = sub.add_parser(
        "serve",
        help="drive the always-on allocation service through a scripted "
             "churn scenario",
    )
    srv.add_argument("workload", nargs="?",
                     help="serialized workload JSON (default: the scaled "
                          "paper workload)")
    srv.add_argument("--copies", type=int, default=4,
                     help="base-workload clones when no workload file is "
                          "given (default 4 = 12 tasks)")
    srv.add_argument("--epoch-iterations", type=int, default=1500,
                     help="optimizer iterations per churn epoch")
    srv.add_argument("--cycles", type=int, default=2,
                     help="deregister/re-register churn cycles")
    srv.add_argument("--queries", type=int, default=1000,
                     help="allocation queries timed after the last epoch")
    srv.add_argument("--backend", choices=("scalar", "vectorized"),
                     default="vectorized",
                     help="optimizer backend for the live solve")
    srv.add_argument("--shards", type=int, default=1,
                     help="shard the vectorized live solve by resource-"
                          "connectivity components (bitwise-identical "
                          "iterates; default 1 = unsharded)")
    srv.add_argument("--shard-mode", choices=("serial", "processes"),
                     default="serial",
                     help="run shards in-process or one worker process "
                          "per shard (default serial)")
    srv.add_argument("--cold", action="store_true",
                     help="disable churn warm starts (baseline mode)")
    srv.add_argument("--smoke", action="store_true",
                     help="small-budget smoke configuration (2 clones, "
                          "1 cycle, 400-iteration epochs)")
    srv.add_argument("--deadline", type=float, default=None,
                     help="overall wall-clock deadline in seconds for the "
                          "scripted scenario; exceeding it exits non-zero "
                          "(default: 120 with --smoke, unlimited "
                          "otherwise)")
    srv.add_argument("--harden", action="store_true",
                     help="wrap the service in the supervised hardening "
                          "layer and drive it through the scripted "
                          "overload fault schedule (storm, stall, "
                          "snapshot corruption, checkpoint outage)")
    srv.add_argument("--ticks", type=int, default=120,
                     help="supervisor ticks for --harden (>= 105 so the "
                          "fault schedule completes; default 120)")
    srv.add_argument("--trace",
                     help="write a JSONL telemetry trace to this file")
    srv.add_argument("-o", "--output",
                     help="write the service report as JSON to this file")

    lnt = sub.add_parser(
        "lint",
        help="run the statan invariant linter (text/JSON/SARIF reports)",
    )
    add_lint_arguments(lnt)

    return parser


def _load_taskset(path: str):
    try:
        with open(path) as handle:
            return taskset_from_json(handle.read())
    except OSError as exc:
        raise SystemExit(f"cannot read {path!r}: {exc}") from exc


def _parse_overrides(pairs: List[str]) -> dict:
    overrides = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"bad --set {pair!r}: expected KEY=VALUE"
            )
        overrides[key] = value
    return overrides


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro import harness
    from repro.errors import HarnessError

    harness.load_all()

    modes = sum((args.list_specs, args.all_specs, args.name is not None))
    if modes != 1:
        raise SystemExit(
            "choose exactly one of: an experiment name, --list, --all"
        )

    if args.list_specs:
        specs = harness.all_specs()
        width = max(len(s.name) for s in specs)
        print(f"{len(specs)} registered experiments:")
        for spec in specs:
            print(f"  {spec.name:<{width}}  {len(spec.checks)} claims  "
                  f"[{spec.source}]  {spec.description}")
        return 0

    if (args.all_specs
            and (args.overrides or args.backend or args.iterations)):
        raise SystemExit(
            "--set/--backend/--iterations apply to a single experiment, "
            "not --all"
        )

    telemetry = Telemetry.to_file(args.trace) if args.trace else None
    try:
        if args.all_specs:
            results = harness.run_all(
                quick=args.quick, seed=args.seed, telemetry=telemetry,
                progress=lambda run: print(run.summary()),
            )
            print()
            print(harness.render_scorecard(results))
            if args.output:
                card = harness.scorecard_dict(results, quick=args.quick)
                with open(args.output, "w") as handle:
                    json.dump(card, handle, indent=2,
                              default=harness.json_default)
                print(f"scorecard written to {args.output}")
            return 0 if all(r.passed for r in results) else 1

        try:
            run = harness.execute(
                args.name, _parse_overrides(args.overrides),
                seed=args.seed, backend=args.backend,
                iterations=args.iterations, quick=args.quick,
                telemetry=telemetry,
            )
        except HarnessError as exc:
            raise SystemExit(str(exc)) from exc
        print(run.summary())
        for check in run.checks:
            marker = {"pass": "PASS", "fail": "FAIL",
                      "skipped": "skip"}[check.status]
            print(f"  [{marker}] {check.name}")
            for key, value in check.measured.items():
                print(f"         {key} = {value:g}")
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(run.to_json() + "\n")
            print(f"artifact written to {args.output}")
        return 0 if run.passed else 1
    finally:
        if telemetry is not None:
            telemetry.close()
            print(f"trace written to {args.trace}")


def _cmd_optimize(args: argparse.Namespace) -> int:
    taskset = _load_taskset(args.workload)
    backend = "vectorized" if args.shards > 1 else args.backend
    config = LLAConfig(max_iterations=args.iterations,
                       warm_start=args.warm_start,
                       backend=backend,
                       shards=args.shards,
                       shard_mode=args.shard_mode)
    telemetry = Telemetry.to_file(args.trace) if args.trace else None
    try:
        result = LLAOptimizer(taskset, config, telemetry=telemetry).run()
    finally:
        if telemetry is not None:
            telemetry.close()
    if args.trace:
        print(f"trace written to {args.trace}")
    print(f"converged: {result.converged} after {result.iterations} "
          f"iterations; utility {result.utility:.3f}")
    for task in taskset.tasks:
        _, crit = task.critical_path(result.latencies)
        print(f"  {task.name}: critical path {crit:.2f} / "
              f"{task.critical_time:.2f}")
    if args.output:
        allocation = {
            "latencies": result.latencies,
            "shares": {
                name: taskset.share_function(name).share(lat)
                for name, lat in result.latencies.items()
            },
            "utility": result.utility,
            "converged": result.converged,
        }
        with open(args.output, "w") as handle:
            json.dump(allocation, handle, indent=2)
        print(f"allocation written to {args.output}")
    return 0 if result.converged else 1


def _cmd_check(args: argparse.Namespace) -> int:
    taskset = _load_taskset(args.workload)
    report = SchedulabilityAnalyzer(iterations=args.iterations).analyze(
        taskset
    )
    print(report.summary())
    return 0 if report.schedulable else 1


def _cmd_export(args: argparse.Namespace) -> int:
    text = taskset_to_json(make_workload(args.name))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"workload written to {args.output}")
    else:
        print(text)
    return 0


def _load_trace(path: str):
    try:
        return read_trace(path)
    except OSError as exc:
        raise SystemExit(f"cannot read {path!r}: {exc}") from exc
    except TelemetryError as exc:
        raise SystemExit(f"bad trace {path!r}: {exc}") from exc


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.trace import summarize_trace
    from repro.telemetry import records_from_trace
    from repro.telemetry.replay import (
        recorder_drops_from_trace,
        supported_events,
    )

    events = supported_events(_load_trace(args.tracefile))
    records = records_from_trace(events)
    if not records:
        raise SystemExit(
            f"no iteration events in {args.tracefile!r}; was the run traced?"
        )
    summary = summarize_trace(
        records, band=args.band,
        dropped_samples=recorder_drops_from_trace(events),
    )
    settling = "-" if summary.settling is None else str(summary.settling)
    print(f"iterations:          {summary.iterations}")
    print(f"final utility:       {summary.final_utility:.6f}")
    print(f"settling iteration:  {settling}")
    print(f"tail oscillation:    {summary.oscillation:.6f}")
    print(f"price drift:         {summary.price_drift:.6f}")
    print(f"violated iterations: {summary.violated_iterations}")
    print(f"dropped samples:     {summary.dropped_samples}")
    print(f"converged cleanly:   {summary.converged_cleanly()}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.telemetry import render_prometheus_snapshot
    from repro.telemetry.replay import recorder_drops_from_trace

    events = _load_trace(args.tracefile)
    if not events:
        raise SystemExit(f"empty trace {args.tracefile!r}")
    snapshots = [ev for ev in events if ev.kind == "metrics_snapshot"]
    if args.prometheus:
        if not snapshots:
            raise SystemExit(
                f"no metrics_snapshot events in {args.tracefile!r}"
            )
        sys.stdout.write(
            render_prometheus_snapshot(snapshots[-1].data["metrics"])
        )
        return 0
    print(f"{len(events)} events:")
    for kind, count in event_counts(events).items():
        print(f"  {kind:<20s} {count}")
    finished = [ev for ev in events if ev.kind == "run_finished"]
    if finished:
        data = finished[-1].data
        print(f"run: runtime={data.get('runtime')} "
              f"converged={data.get('converged')} "
              f"iterations={data.get('iterations')} "
              f"utility={data.get('utility')}")
    drops = recorder_drops_from_trace(events)
    if drops:
        print(f"recorder drops: {drops} samples lost to full ring buffers")
    if snapshots:
        print("metrics:")
        for name, snap in sorted(snapshots[-1].data["metrics"].items()):
            fields = ", ".join(
                f"{k}={v}" for k, v in snap.items() if k != "type"
            )
            print(f"  {name} ({snap['type']}): {fields}")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.diagnostics import diagnose_trace_file, findings_to_dicts
    from repro.errors import DiagnosticsError
    from repro.telemetry.replay import supported_events
    from repro.telemetry.spans import (
        critical_path,
        format_critical_path,
        spans_from_trace,
    )

    taskset = _load_taskset(args.workload) if args.workload else None
    try:
        findings = diagnose_trace_file(
            args.tracefile, window=args.window, taskset=taskset,
        )
    except (DiagnosticsError, TelemetryError, OSError) as exc:
        raise SystemExit(f"cannot diagnose {args.tracefile!r}: {exc}")
    spans = spans_from_trace(supported_events(_load_trace(args.tracefile)))
    path = critical_path(spans) if spans else []
    if args.as_json:
        print(json.dumps({
            "trace": args.tracefile,
            "window": args.window,
            "findings": findings_to_dicts(findings),
            "critical_path": [record.to_dict() for record in path],
        }, indent=2))
    else:
        if findings:
            for finding in findings:
                print(f"[{finding.severity.upper():<8}] {finding.detector}: "
                      f"{finding.summary}")
        else:
            print("no findings: trajectory looks healthy")
        if path:
            print()
            print("critical path:")
            print(format_critical_path(path))
    return 1 if any(f.severity == "critical" for f in findings) else 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.console import live_top
    from repro.diagnostics import DiagnosticsEngine
    from repro.distributed.runtime import (
        DistributedConfig,
        DistributedLLARuntime,
    )

    taskset = _load_taskset(args.workload)
    config = DistributedConfig(
        delay=args.delay, loss_probability=args.loss, seed=args.seed,
    )
    runtime = DistributedLLARuntime(taskset, config=config)
    engine = DiagnosticsEngine(taskset=taskset)
    state = live_top(
        runtime, rounds=args.rounds, refresh_every=args.refresh,
        engine=engine, plain=args.plain,
    )
    return 0 if state.feasible else 1


def _cmd_benchdiff(args: argparse.Namespace) -> int:
    from repro.console import diff_files, format_diff
    from repro.errors import DiagnosticsError

    try:
        diff = diff_files(
            args.baseline, args.current,
            threshold=args.threshold, ignore_timing=args.ignore_timing,
        )
    except DiagnosticsError as exc:
        raise SystemExit(str(exc))
    print(format_diff(diff, verbose=args.verbose))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(diff.to_dict(), handle, indent=2)
        print(f"diff report written to {args.output}")
    return 0 if diff.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.resilience import (
        run_blackout_recovery,
        run_crash_recovery,
    )

    rounds, fault_at, outage = args.rounds, args.fault_at, args.outage
    if args.quick:
        rounds, fault_at, outage = 500, 150, 30

    def crash(warm: bool):
        return run_crash_recovery(
            agent=args.agent, rounds=rounds, crash_at=fault_at,
            outage=outage, warm=warm, seed=args.seed,
            staleness_limit=args.staleness_limit,
        )

    def blackout():
        return run_blackout_recovery(
            rounds=rounds, start=fault_at, duration=outage, seed=args.seed,
            staleness_limit=args.staleness_limit,
        )

    runners = {
        "crash-restart": lambda: [crash(True)],
        "crash-cold": lambda: [crash(False)],
        "blackout": lambda: [blackout()],
        "all": lambda: [crash(True), crash(False), blackout()],
    }
    reports = runners[args.scenario]()
    for report in reports:
        print(report.summary())
    healthy = all(r.recovered() and r.degradation_safe() for r in reports)
    print(f"healthy: {healthy}")
    if args.output:
        payload = {
            "experiment": "resilience",
            "rounds": rounds,
            "seed": args.seed,
            "staleness_limit": args.staleness_limit,
            "healthy": healthy,
            "reports": [r.to_dict(include_traces=args.traces)
                        for r in reports],
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"chaos report written to {args.output}")
    return 0 if healthy else 1


def _run_with_deadline(coro: "Coroutine[Any, Any, None]",
                       deadline: Optional[float]) -> bool:
    """Run ``coro`` to completion, bounded by ``deadline`` seconds.

    Returns True on completion, False when the deadline fired (the
    scenario is cancelled).  A ``None`` deadline means unbounded.
    """
    import asyncio

    if deadline is None:
        asyncio.run(coro)
        return True
    try:
        asyncio.run(asyncio.wait_for(coro, timeout=deadline))
    except asyncio.TimeoutError:
        return False
    return True


def _serve_hardened(args: argparse.Namespace, taskset: "TaskSet",
                    telemetry: Optional[Telemetry],
                    deadline: Optional[float]) -> int:
    """The --harden serve mode: a supervised service driven through the
    scripted overload fault schedule."""
    import tempfile

    from repro.distributed.faults import (
        CheckpointCorruption,
        CheckpointOutage,
        ChurnStorm,
        FaultPlan,
        LoopStall,
    )
    from repro.service import (
        BrownoutConfig,
        HardeningConfig,
        SupervisedService,
    )

    if args.ticks < 105:
        print("--ticks must be >= 105 so the fault schedule completes "
              "(checkpoint outage ends at tick 96, breaker recloses at "
              "100)", file=sys.stderr)
        return 2
    plan = FaultPlan(
        churn_storms=(ChurnStorm(at=30, events=36, kind="oscillate"),
                      ChurnStorm(at=64, events=6, kind="arrivals")),
        loop_stalls=(LoopStall(at=60, ticks=8),),
        checkpoint_corruptions=(CheckpointCorruption(at=62),),
        checkpoint_outages=(CheckpointOutage(start=90, end=96),),
    )
    tasks = list(taskset.tasks)
    with tempfile.TemporaryDirectory(prefix="serve-harden-") as snapdir:
        config = HardeningConfig(
            queue_capacity=8,
            stall_deadline=3,
            snapshot_interval=10,
            snapshot_dir=snapdir,
            brownout=BrownoutConfig(enter_after=2, exit_after=5),
            reconverge_patience=max(200, args.ticks),
            seed=0,
        )
        service = SupervisedService(
            list(taskset.resources.values()), tasks,
            config=config, telemetry=telemetry, fault_plan=plan,
        )
        if not _run_with_deadline(service.run(args.ticks), deadline):
            print(f"hardened serve scenario exceeded the "
                  f"{deadline:.0f}s deadline", file=sys.stderr)
            return 2
        answered = degraded_answers = 0
        for task in tasks:
            view = service.query(task.name)
            answered += 1
            if view.degraded:
                degraded_answers += 1
        stats = service.stats()
    print(f"hardened service survived the scripted fault schedule "
          f"({args.ticks} ticks)")
    print(f"  supervisor restarts {stats.supervisor_restarts} "
          f"(watchdog fires {stats.watchdog_fires}, "
          f"stalled ticks {stats.stall_ticks})")
    print(f"  churn queue: depth <= {stats.queue_max_depth}, "
          f"shed {stats.queue_shed}, coalesced {stats.queue_coalesced}, "
          f"degraded-shed {stats.degraded_shed}")
    print(f"  brownout: {stats.brownout_entries} entries / "
          f"{stats.brownout_exits} exits "
          f"(now {'degraded' if stats.degraded else 'healthy'})")
    print(f"  checkpoints: {stats.snapshots_taken} taken, "
          f"{stats.snapshot_corruptions} corrupt, "
          f"{stats.retries} retries, breaker {stats.breaker_state} "
          f"after {stats.breaker_opens} opens")
    print(f"  queries: {stats.live_served + stats.degraded_served + stats.stale_served} served "
          f"({stats.degraded_served + stats.stale_served} from the "
          f"last-good allocation), {stats.failed_queries} failed")
    healthy = (not stats.degraded
               and stats.failed_queries == 0
               and stats.breaker_state == "closed"
               and answered == len(tasks))
    if telemetry is not None:
        telemetry.close()
        print(f"trace written to {args.trace}")
    if args.output:
        payload = {
            "command": "serve",
            "mode": "hardened",
            "backend": args.backend,
            "ticks": args.ticks,
            "healthy": healthy,
            "degraded_answers": degraded_answers,
            "stats": stats.to_dict(),
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"service report written to {args.output}")
    return 0 if healthy else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.service import AllocationService, ServiceConfig

    if args.smoke:
        copies, cycles, epoch_iters = 2, 1, 400
    else:
        copies, cycles, epoch_iters = (args.copies, args.cycles,
                                       args.epoch_iterations)
    deadline = args.deadline
    if deadline is None and args.smoke:
        deadline = 120.0
    if args.workload:
        taskset = _load_taskset(args.workload)
    else:
        taskset = scaled_workload(copies)

    telemetry = Telemetry.to_file(args.trace) if args.trace else None
    if args.harden:
        return _serve_hardened(args, taskset, telemetry, deadline)
    service = AllocationService(
        list(taskset.resources.values()),
        config=ServiceConfig(backend=args.backend,
                             warm_start_churn=not args.cold,
                             shards=args.shards,
                             shard_mode=args.shard_mode),
        telemetry=telemetry,
    )
    tasks = list(taskset.tasks)
    for task in tasks:
        decision = service.register(task)
        if not decision.admitted:
            raise SystemExit(
                f"task {task.name!r} rejected: {decision.reason}"
            )

    async def scenario() -> None:
        await service.run(iterations=epoch_iters)
        for cycle in range(cycles):
            victim = tasks[(cycle * 5) % len(tasks)]
            service.deregister(victim.name)
            await service.run(iterations=epoch_iters)
            service.register(victim)
            await service.run(iterations=epoch_iters)

    if not _run_with_deadline(scenario(), deadline):
        print(f"serve scenario exceeded the {deadline:.0f}s deadline",
              file=sys.stderr)
        return 2

    started = time.perf_counter()
    infeasible_queries = 0
    for i in range(args.queries):
        view = service.query(tasks[i % len(tasks)].name)
        if not view.meets_critical_time:
            infeasible_queries += 1
    elapsed = time.perf_counter() - started
    qps = args.queries / elapsed if elapsed > 0.0 else 0.0

    stats = service.stats()
    mode = "cold" if args.cold else "warm"
    print(f"always-on service ({mode} churn restarts, "
          f"{args.backend} backend)")
    print(f"  tasks {stats.tasks}, epochs {stats.epoch}, "
          f"iterations {stats.iterations}")
    print(f"  re-convergence rounds per epoch: "
          f"{list(stats.reconvergence_rounds)}")
    print(f"  structure cache: {stats.cache_hits} hits / "
          f"{stats.cache_misses} misses "
          f"(hit rate {stats.cache_hit_rate:.2f})")
    print(f"  queries: {args.queries} in {elapsed * 1e3:.1f} ms "
          f"({qps:,.0f}/s), {infeasible_queries} infeasible")
    print(f"  converged: {stats.converged}")
    if telemetry is not None:
        telemetry.close()
        print(f"trace written to {args.trace}")

    healthy = stats.converged and infeasible_queries == 0
    if args.output:
        payload = {
            "command": "serve",
            "mode": mode,
            "backend": args.backend,
            "epoch_iterations": epoch_iters,
            "cycles": cycles,
            "healthy": healthy,
            "query_count": args.queries,
            "queries_per_second": qps,
            "infeasible_queries": infeasible_queries,
            "stats": stats.to_dict(),
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"service report written to {args.output}")
    return 0 if healthy else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "optimize": _cmd_optimize,
        "check": _cmd_check,
        "export-workload": _cmd_export,
        "trace": _cmd_trace,
        "stats": _cmd_stats,
        "diagnose": _cmd_diagnose,
        "top": _cmd_top,
        "bench-diff": _cmd_benchdiff,
        "chaos": _cmd_chaos,
        "serve": _cmd_serve,
        "lint": run_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
