"""repro: reproduction of LLA — Lagrangian Latency Assignment (ICDCS 2008).

Quickstart::

    from repro import base_workload, LLAOptimizer, LLAConfig

    taskset = base_workload()
    result = LLAOptimizer(taskset, LLAConfig(max_iterations=1000)).run()
    print(result.converged, result.utility)
"""

from repro.core import (
    ErrorCorrector,
    LLAConfig,
    LLAOptimizer,
    OptimizationResult,
)
from repro.model import (
    Resource,
    Subtask,
    SubtaskGraph,
    Task,
    TaskSet,
)
from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    Tracer,
)
from repro.workloads import (
    base_workload,
    prototype_workload,
    scaled_workload,
    unschedulable_workload,
)

__version__ = "1.0.0"

__all__ = [
    "LLAOptimizer",
    "LLAConfig",
    "OptimizationResult",
    "ErrorCorrector",
    "Task",
    "Subtask",
    "TaskSet",
    "SubtaskGraph",
    "Resource",
    "Telemetry",
    "MetricsRegistry",
    "Tracer",
    "base_workload",
    "scaled_workload",
    "unschedulable_workload",
    "prototype_workload",
    "__version__",
]
