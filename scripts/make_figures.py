"""Regenerate every figure's data series as CSV files.

No plotting dependency is assumed; each CSV has one column per series and
one row per iteration/epoch, ready for any plotting tool:

    python scripts/make_figures.py [output_dir]

Produces: fig5.csv, fig6.csv, fig7_utility.csv, fig7_shares.csv,
fig8_shares.csv, fig8_errors.csv.
"""

import sys
from pathlib import Path

from repro.analysis.reporting import series_to_csv
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures")
    out_dir.mkdir(parents=True, exist_ok=True)

    print("fig5 (step sizes)...")
    fig5 = run_fig5()
    (out_dir / "fig5.csv").write_text(series_to_csv({
        "iteration": list(range(1, fig5.iterations + 1)),
        **{label: s.utilities for label, s in fig5.series.items()},
    }))

    print("fig6 (task-count scaling)...")
    fig6 = run_fig6()
    (out_dir / "fig6.csv").write_text(series_to_csv({
        "iteration": list(range(1, 501)),
        **{f"{n}_tasks": p.utilities for n, p in sorted(fig6.points.items())},
    }))

    print("fig7 (schedulability)...")
    fig7 = run_fig7()
    (out_dir / "fig7_utility.csv").write_text(series_to_csv({
        "iteration": list(range(1, fig7.iterations + 1)),
        "utility": fig7.utilities,
    }))
    (out_dir / "fig7_shares.csv").write_text(series_to_csv({
        "iteration": list(range(1, fig7.iterations + 1)),
        **{r: trace for r, trace in sorted(fig7.share_sums.items())},
    }))

    print("fig8 (error correction)...")
    fig8 = run_fig8()
    epochs = list(range(1, len(fig8.fast_share_trace) + 1))
    (out_dir / "fig8_shares.csv").write_text(series_to_csv({
        "epoch": epochs,
        "fast_share": fig8.fast_share_trace,
        "slow_share": fig8.slow_share_trace,
    }))
    (out_dir / "fig8_errors.csv").write_text(series_to_csv({
        "epoch": epochs,
        "fast_smoothed_error": fig8.fast_error_trace,
    }))

    print(f"wrote {len(list(out_dir.glob('*.csv')))} CSV files to {out_dir}/")


if __name__ == "__main__":
    main()
